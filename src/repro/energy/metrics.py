"""Power-efficiency metrics (Figures 12–15).

Power and energy (Figures 12, 13) are for the issue queue alone. The
energy·delay and energy·delay² comparisons (Figures 14, 15) are for the
*whole processor*, assuming — as the paper does, citing Wilcox & Manne —
that the issue queue contributes 23% of total chip power in the baseline.
The rest of the chip is modelled as energy proportional to activity: a
per-cycle component (clock tree, leakage-as-dynamic at this node) plus a
per-committed-instruction component, split 40/60, calibrated on the
baseline so the issue-queue share is exactly 23% there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.stats import SimulationStats
from repro.energy.model import EnergyModel

__all__ = ["IQ_POWER_SHARE", "EfficiencyMetrics", "compute_metrics", "RestOfChipModel"]

IQ_POWER_SHARE = 0.23
_PER_CYCLE_SPLIT = 0.4


@dataclass(frozen=True)
class RestOfChipModel:
    """Per-cycle and per-instruction energy of everything but the IQ."""

    per_cycle_pj: float
    per_instruction_pj: float

    def energy_pj(self, cycles: int, instructions: int) -> float:
        return self.per_cycle_pj * cycles + self.per_instruction_pj * instructions


def calibrate_rest_of_chip(
    baseline_iq_energy_pj: float,
    baseline_cycles: int,
    baseline_instructions: int,
) -> RestOfChipModel:
    """Fit the rest-of-chip model so the baseline IQ share is 23%."""
    if baseline_cycles <= 0 or baseline_instructions <= 0:
        raise ValueError("baseline run must have cycles and instructions")
    rest_total = baseline_iq_energy_pj * (1.0 - IQ_POWER_SHARE) / IQ_POWER_SHARE
    per_cycle = rest_total * _PER_CYCLE_SPLIT / baseline_cycles
    per_instruction = rest_total * (1.0 - _PER_CYCLE_SPLIT) / baseline_instructions
    return RestOfChipModel(per_cycle, per_instruction)


@dataclass
class EfficiencyMetrics:
    """All the quantities Figures 12–15 report, for one run."""

    iq_energy_pj: float
    cycles: int
    instructions: int
    chip_energy_pj: float

    @property
    def iq_power(self) -> float:
        """Issue-queue power: energy per cycle (pJ/cycle)."""
        return self.iq_energy_pj / self.cycles if self.cycles else 0.0

    @property
    def energy_delay(self) -> float:
        """Whole-chip energy × delay (pJ·cycles)."""
        return self.chip_energy_pj * self.cycles

    @property
    def energy_delay2(self) -> float:
        """Whole-chip energy × delay² (pJ·cycles²)."""
        return self.chip_energy_pj * self.cycles * self.cycles

    def normalized_to(self, baseline: "EfficiencyMetrics") -> Dict[str, float]:
        """The paper's normalized comparison against a baseline run."""
        return {
            "power": self.iq_power / baseline.iq_power,
            "energy": self.iq_energy_pj / baseline.iq_energy_pj,
            "energy_delay": self.energy_delay / baseline.energy_delay,
            "energy_delay2": self.energy_delay2 / baseline.energy_delay2,
        }


def compute_metrics(
    model: EnergyModel,
    stats: SimulationStats,
    rest_of_chip: RestOfChipModel,
) -> EfficiencyMetrics:
    """Evaluate one run's efficiency metrics under a rest-of-chip model."""
    events = stats.events.as_dict()
    iq_energy = model.energy_pj(events)
    chip_energy = iq_energy + rest_of_chip.energy_pj(
        stats.cycles, stats.committed_instructions
    )
    return EfficiencyMetrics(
        iq_energy_pj=iq_energy,
        cycles=stats.cycles,
        instructions=stats.committed_instructions,
        chip_energy_pj=chip_energy,
    )
