"""Energy modelling: CACTI-like arrays, event weighting, metrics."""

from repro.energy.breakdown import (
    COMPONENT_OF_EVENT,
    breakdown_fractions,
    energy_breakdown,
)
from repro.energy.cacti import (
    TECH_100NM,
    Technology,
    cam_broadcast_energy,
    cam_compare_energy,
    mux_drive_energy,
    ram_access_energy,
    select_energy,
)
from repro.energy.metrics import (
    IQ_POWER_SHARE,
    EfficiencyMetrics,
    RestOfChipModel,
    compute_metrics,
)
from repro.energy.metrics import calibrate_rest_of_chip
from repro.energy.model import ENTRY_BITS, TAG_BITS, EnergyModel

__all__ = [
    "COMPONENT_OF_EVENT",
    "ENTRY_BITS",
    "EfficiencyMetrics",
    "EnergyModel",
    "IQ_POWER_SHARE",
    "RestOfChipModel",
    "TAG_BITS",
    "TECH_100NM",
    "Technology",
    "breakdown_fractions",
    "calibrate_rest_of_chip",
    "cam_broadcast_energy",
    "cam_compare_energy",
    "compute_metrics",
    "energy_breakdown",
    "mux_drive_energy",
    "ram_access_energy",
    "select_energy",
]
