"""Per-event energy weights for each issue-queue organization.

The simulator counts *events* (array reads/writes, CAM comparisons,
selection passes, crossbar traversals); this module assigns each event a
per-occurrence energy from the CACTI-like array model, given the scheme's
geometry. The product of the two — Wattch's activity × per-access energy
methodology — gives the issue-logic energy the paper reports.

Structure geometries (bits are instruction-payload estimates in the same
spirit as Wattch's defaults):

* issue-queue entry payload: ~96 bits (opcode, tags, immediates, ROB id),
* wakeup tag: 8 bits (160 physical registers → 8-bit tags),
* queue-rename (Qrename) table: one entry per logical register, a queue
  id (and for MixBUFF a chain id),
* regs_ready: one bit per physical register, multiple read ports,
* chain-latency table: one entry per chain, 5 bits (max FU latency 20),
* crossbar legs sized by how many queues can feed each FU type.
"""

from __future__ import annotations

from typing import Dict

from repro.common.config import (
    SCHEME_CONVENTIONAL,
    SCHEME_LATFIFO,
    SCHEME_MIXBUFF,
    ProcessorConfig,
)
from repro.energy.cacti import (
    TECH_100NM,
    Technology,
    cam_broadcast_energy,
    cam_compare_energy,
    mux_drive_energy,
    ram_access_energy,
    select_energy,
)

__all__ = ["EnergyModel", "ENTRY_BITS", "TAG_BITS"]

ENTRY_BITS = 96
TAG_BITS = 8
QRENAME_BITS = 8
READY_BITS = 1
CHAIN_LAT_BITS = 5
OPERAND_BITS = 64


class EnergyModel:
    """Maps event names to per-event energies (picojoules) for a config."""

    def __init__(self, config: ProcessorConfig, tech: Technology = TECH_100NM) -> None:
        config.validate()
        self.config = config
        self.tech = tech
        self.weights: Dict[str, float] = {}
        self._build()

    # -- construction ---------------------------------------------------
    def _build(self) -> None:
        scheme = self.config.scheme
        weights = self.weights
        kind = scheme.kind

        if kind == SCHEME_CONVENTIONAL:
            entries = (
                self.config.rob_entries
                if scheme.unbounded
                else max(scheme.int_queue_entries, scheme.fp_queue_entries)
            )
            # The Section 4 baseline is subbanked: 8 banks of 8 entries.
            # A buffer access touches one bank; the wakeup tag broadcast
            # runs across the whole array (its tag lines span all banks,
            # and each occupied entry's matchlines precharge/compare —
            # that per-entry cost is the comparisons event).
            bank_entries = max(1, entries // 8)
            weights["iq_wakeup_comparisons"] = cam_compare_energy(TAG_BITS, self.tech)
            weights["iq_wakeup_broadcasts"] = cam_broadcast_energy(
                entries, TAG_BITS, self.tech
            )
            weights["iq_buff_write"] = ram_access_energy(
                bank_entries, ENTRY_BITS, 2, self.tech
            )
            weights["iq_buff_read"] = ram_access_energy(
                bank_entries, ENTRY_BITS, 2, self.tech
            )
            weights["iq_select_cycles"] = select_energy(entries, self.tech)
            feeders = self.config.int_issue_width  # centralized crossbar
        else:
            fifo_entries = scheme.int_queue_entries
            weights["fifo_write"] = ram_access_energy(fifo_entries, ENTRY_BITS, 1, self.tech)
            weights["fifo_read"] = ram_access_energy(fifo_entries, ENTRY_BITS, 1, self.tech)
            qrename_entries = (
                self.config.num_arch_int_regs + self.config.num_arch_fp_regs
            )
            qrename = ram_access_energy(qrename_entries, QRENAME_BITS, 2, self.tech)
            weights["qrename_read"] = qrename
            weights["qrename_write"] = qrename
            ready_entries = self.config.int_phys_regs + self.config.fp_phys_regs
            ready = ram_access_energy(ready_entries, READY_BITS, 4, self.tech)
            weights["regs_ready_read"] = ready
            weights["regs_ready_write"] = ready
            # Distributed queues each drive a small leg; pooled FUs see a
            # crossbar merging every queue of the side.
            feeders = 1 if scheme.distributed_fus else max(scheme.int_queues, scheme.fp_queues)

        if kind == SCHEME_MIXBUFF:
            buf_entries = scheme.fp_queue_entries
            weights["mb_buff_write"] = ram_access_energy(buf_entries, ENTRY_BITS, 1, self.tech)
            weights["mb_buff_read"] = ram_access_energy(buf_entries, ENTRY_BITS, 1, self.tech)
            weights["mb_select_cycles"] = select_energy(buf_entries, self.tech)
            chains = scheme.max_chains_per_queue or scheme.fp_queue_entries
            chain_table = ram_access_energy(chains, CHAIN_LAT_BITS, 1, self.tech)
            weights["chains_read"] = chain_table
            weights["chains_write"] = chain_table
            weights["mb_reg_write"] = ram_access_energy(1, ENTRY_BITS, 1, self.tech) * 0.25

        if kind == SCHEME_LATFIFO:
            # The estimator is adder hardware comparable to a small RAM
            # access per dispatched instruction.
            weights["latfifo_estimator_ops"] = ram_access_energy(
                64, QRENAME_BITS, 2, self.tech
            )

        muldiv_feeders = 2 if scheme.distributed_fus else feeders
        weights["mux_int_alu"] = mux_drive_energy(feeders, OPERAND_BITS, self.tech)
        weights["mux_int_mul"] = mux_drive_energy(muldiv_feeders, OPERAND_BITS, self.tech)
        weights["mux_fp_alu"] = mux_drive_energy(muldiv_feeders, OPERAND_BITS, self.tech)
        weights["mux_fp_mul"] = mux_drive_energy(muldiv_feeders, OPERAND_BITS, self.tech)

    # -- evaluation -------------------------------------------------------
    def energy_pj(self, events: Dict[str, int]) -> float:
        """Total issue-logic energy (pJ) for a bag of event counts.

        Summed in sorted event-name order so the floating-point result is
        identical whether the counts came from a fresh simulation or a
        JSON cache round trip (dict insertion order differs between the
        two; float addition is not associative).
        """
        return sum(
            count * self.weights.get(name, 0.0)
            for name, count in sorted(events.items())
        )

    def energy_by_event(self, events: Dict[str, int]) -> Dict[str, float]:
        """Energy (pJ) attributed to each *weighted* event name.

        Sorted by event name for the same order-stability reason as
        :meth:`energy_pj` — downstream breakdowns sum these floats.
        """
        return {
            name: count * self.weights[name]
            for name, count in sorted(events.items())
            if name in self.weights and count
        }
