"""Energy breakdowns per component (Figures 9, 10, 11).

Each figure stacks the issue-logic energy into named components. The
component names match the paper's legends:

* IQ_64_64 (Figure 9): ``wakeup``, ``buff``, ``select``, ``MuxIntALU``,
  ``MuxIntMUL``, ``MuxFPALU``, ``MuxFPMUL``;
* IF_distr (Figure 10): ``Qrename``, ``fifo``, ``regs_ready``, muxes;
* MB_distr (Figure 11): ``Qrename``, ``fifo``, ``buff``, ``regs_ready``,
  ``select``, ``chains``, ``reg``, muxes.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.energy.model import EnergyModel

__all__ = ["COMPONENT_OF_EVENT", "energy_breakdown", "breakdown_fractions"]

COMPONENT_OF_EVENT: Mapping[str, str] = {
    "iq_wakeup_comparisons": "wakeup",
    "iq_wakeup_broadcasts": "wakeup",
    "iq_buff_write": "buff",
    "iq_buff_read": "buff",
    "iq_select_cycles": "select",
    "qrename_read": "Qrename",
    "qrename_write": "Qrename",
    "fifo_write": "fifo",
    "fifo_read": "fifo",
    "regs_ready_read": "regs_ready",
    "regs_ready_write": "regs_ready",
    "mb_buff_write": "buff",
    "mb_buff_read": "buff",
    "mb_select_cycles": "select",
    "chains_read": "chains",
    "chains_write": "chains",
    "mb_reg_write": "reg",
    "latfifo_estimator_ops": "estimator",
    "mux_int_alu": "MuxIntALU",
    "mux_int_mul": "MuxIntMUL",
    "mux_fp_alu": "MuxFPALU",
    "mux_fp_mul": "MuxFPMUL",
}


def energy_breakdown(model: EnergyModel, events: Dict[str, int]) -> Dict[str, float]:
    """Issue-logic energy (pJ) per named component."""
    per_event = model.energy_by_event(events)
    breakdown: Dict[str, float] = {}
    for event, energy in per_event.items():
        component = COMPONENT_OF_EVENT.get(event, "other")
        breakdown[component] = breakdown.get(component, 0.0) + energy
    return breakdown


def breakdown_fractions(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Normalize a breakdown to fractions summing to 1 (empty → empty)."""
    total = sum(breakdown.values())
    if total <= 0:
        return {}
    return {name: value / total for name, value in breakdown.items()}
