"""Analytical RAM/CAM energy model in the spirit of CACTI 3.0.

The paper derives per-access energies from CACTI 3.0 at 0.10 µm. CACTI
itself is a large circuit model; for the reproduction only the *scaling
laws* matter, because every result in the paper is a ratio (breakdown
percentages, normalized power/energy/ED/ED²). This module models a
storage array's access energy as the switched capacitance of its decoder,
wordlines, bitlines and sense amplifiers:

* wordline energy ∝ columns (bits per entry),
* bitline energy ∝ rows (entries) — per *column* that switches,
* decoder energy ∝ log2(rows),
* each extra port replicates wordlines/bitlines and grows every cell,
  the standard ~linear-per-port area/capacitance rule.

CAM match energy adds, per comparison, the match-line discharge and the
tag bit-line drive across the compared entry's tag width.

Absolute numbers are picojoules per access at the configured technology
node; they are in the right ballpark for 0.10 µm (a 64x128 single-port
RAM read costs a few pJ) but should be read as *relative* weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = ["Technology", "ram_access_energy", "cam_compare_energy", "select_energy", "TECH_100NM"]


@dataclass(frozen=True)
class Technology:
    """Process parameters for the energy model."""

    feature_um: float = 0.10
    vdd: float = 1.1
    # Effective switched capacitance, femtofarads, for minimum-size
    # structures at the reference 0.10 µm node.
    wordline_cap_per_cell_ff: float = 1.8
    bitline_cap_per_cell_ff: float = 2.2
    decoder_cap_per_level_ff: float = 12.0
    senseamp_cap_ff: float = 6.0
    # Per compared tag bit: matchline precharge + pulldown, the shared
    # sense (SO) line and the comparator driver share. This is the cost
    # the Folegnani-González optimization avoids for ready operands.
    matchline_cap_per_bit_ff: float = 20.0
    gate_cap_ff: float = 1.5

    def validate(self) -> None:
        if not 0.01 <= self.feature_um <= 1.0:
            raise ConfigurationError("feature size out of range")
        if self.vdd <= 0:
            raise ConfigurationError("vdd must be positive")

    @property
    def scale(self) -> float:
        """Capacitance scale factor relative to the 0.10 µm reference."""
        return self.feature_um / 0.10

    def energy_pj(self, cap_ff: float) -> float:
        """E = C·V² for a full-swing switch of ``cap_ff`` femtofarads."""
        return cap_ff * self.scale * self.vdd * self.vdd * 1e-3  # fF·V² -> pJ


TECH_100NM = Technology()


def _check_geometry(entries: int, width_bits: int, ports: int) -> None:
    if entries < 1:
        raise ConfigurationError("array needs at least one entry")
    if width_bits < 1:
        raise ConfigurationError("array needs at least one bit per entry")
    if ports < 1:
        raise ConfigurationError("array needs at least one port")


def ram_access_energy(
    entries: int,
    width_bits: int,
    ports: int = 1,
    tech: Technology = TECH_100NM,
) -> float:
    """Energy (pJ) of one read or write access to a RAM array.

    Ports multiply the per-cell capacitance (extra word/bit lines run
    through every cell).
    """
    _check_geometry(entries, width_bits, ports)
    tech.validate()
    port_factor = 1.0 + 0.8 * (ports - 1)
    wordline = tech.wordline_cap_per_cell_ff * width_bits * port_factor
    # Every column's bitline pair (running past all rows) swings by the
    # sense margin on an access; 0.15 is the effective swing fraction.
    bitline = (
        tech.bitline_cap_per_cell_ff * entries * width_bits * port_factor * 0.15
    )
    decoder_levels = max(1, math.ceil(math.log2(entries))) if entries > 1 else 1
    decoder = tech.decoder_cap_per_level_ff * decoder_levels
    sense = tech.senseamp_cap_ff * width_bits
    return tech.energy_pj(wordline + bitline + decoder + sense)


def cam_compare_energy(tag_bits: int, tech: Technology = TECH_100NM) -> float:
    """Energy (pJ) of comparing one broadcast tag against one CAM entry.

    This is the per-comparison cost: match-line precharge/discharge plus
    the share of the tag-line drive attributable to this entry. Waking
    only unready operands (the baseline's optimization) means the caller
    multiplies this by the number of unready operand slots only.
    """
    if tag_bits < 1:
        raise ConfigurationError("tags need at least one bit")
    tech.validate()
    matchline = tech.matchline_cap_per_bit_ff * tag_bits
    tagline_share = tech.bitline_cap_per_cell_ff * tag_bits
    return tech.energy_pj(matchline + tagline_share)


def cam_broadcast_energy(
    entries: int, tag_bits: int, tech: Technology = TECH_100NM
) -> float:
    """Energy (pJ) of driving one result tag down the CAM tag lines.

    The tag lines span every entry of the queue (banking confines this to
    non-empty banks; callers account occupancy via the comparison count,
    and this term models the fixed drive across the array).
    """
    if entries < 1 or tag_bits < 1:
        raise ConfigurationError("broadcast needs entries and tag bits")
    tech.validate()
    tagline = tech.bitline_cap_per_cell_ff * entries * tag_bits
    return tech.energy_pj(tagline)


def select_energy(entries: int, tech: Technology = TECH_100NM) -> float:
    """Energy (pJ) of one arbitration pass over ``entries`` requesters.

    Selection is a tree of arbiter cells (Palacharla's model): ~entries
    cells at the leaves plus internal nodes, so ≈ 2·entries gates switch.
    """
    if entries < 1:
        raise ConfigurationError("selection needs at least one entry")
    tech.validate()
    return tech.energy_pj(tech.gate_cap_ff * 2.0 * entries)


def mux_drive_energy(inputs: int, width_bits: int, tech: Technology = TECH_100NM) -> float:
    """Energy (pJ) of driving one instruction through an N-input crossbar
    leg to a functional unit.

    The wire/mux capacitance grows with the number of sources the
    crossbar must merge — the term the paper attacks by distributing the
    functional units (a distributed queue drives a 1-input leg).
    """
    if inputs < 1:
        raise ConfigurationError("mux needs at least one input")
    if width_bits < 1:
        raise ConfigurationError("mux needs at least one bit")
    tech.validate()
    wire = tech.gate_cap_ff * inputs * width_bits
    return tech.energy_pj(wire)
