"""The dynamic-instruction record consumed by the simulator.

A trace is a sequence of :class:`Instruction` objects carrying the
register dataflow (architectural register numbers), the PC stream, branch
outcomes and memory addresses. The pipeline annotates each in-flight
instruction with a :class:`DynamicState` rather than mutating the trace,
so a trace can be replayed under many schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import TraceError
from repro.isa.opcodes import OpClass

__all__ = ["Instruction", "RegisterRef", "validate_instruction"]


@dataclass(frozen=True, slots=True)
class RegisterRef:
    """An architectural register reference: (is_fp, index)."""

    is_fp: bool
    index: int

    def __str__(self) -> str:
        return f"{'f' if self.is_fp else 'r'}{self.index}"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction of a trace.

    ``seq`` is the dynamic sequence number (program order). ``pc`` is the
    instruction address, used by the I-cache and the branch predictor.
    ``srcs`` are up to two source registers; ``dest`` the destination (or
    ``None``, e.g. for stores and branches). For memory operations
    ``mem_addr`` is the effective address; for branches ``taken`` and
    ``target`` describe the actual outcome.
    """

    seq: int
    pc: int
    op: OpClass
    srcs: Tuple[RegisterRef, ...] = ()
    dest: Optional[RegisterRef] = None
    mem_addr: Optional[int] = None
    taken: Optional[bool] = None
    target: Optional[int] = None

    @property
    def is_fp_side(self) -> bool:
        """True if the instruction dispatches to the FP issue queues."""
        return self.op.is_fp

    def __str__(self) -> str:
        parts = [f"#{self.seq}", self.op.value, f"pc=0x{self.pc:x}"]
        if self.dest is not None:
            parts.append(f"dst={self.dest}")
        if self.srcs:
            parts.append("src=" + ",".join(str(s) for s in self.srcs))
        if self.mem_addr is not None:
            parts.append(f"addr=0x{self.mem_addr:x}")
        if self.op.is_branch:
            parts.append("taken" if self.taken else "not-taken")
        return " ".join(parts)


def validate_instruction(inst: Instruction, num_int_regs: int, num_fp_regs: int) -> None:
    """Check one instruction against the stream invariants.

    Raises :class:`TraceError` on: out-of-range register indices, register
    class mismatches (e.g. an FP ALU op writing an integer register), a
    memory op without an address, a branch without an outcome, or more
    than two sources.
    """
    if len(inst.srcs) > 2:
        raise TraceError(f"{inst}: more than two source operands")
    for ref in inst.srcs + ((inst.dest,) if inst.dest else ()):
        limit = num_fp_regs if ref.is_fp else num_int_regs
        if not 0 <= ref.index < limit:
            raise TraceError(f"{inst}: register {ref} out of range")
    if inst.op.is_memory:
        if inst.mem_addr is None:
            raise TraceError(f"{inst}: memory operation without an address")
        if inst.mem_addr < 0:
            raise TraceError(f"{inst}: negative memory address")
    elif inst.mem_addr is not None:
        raise TraceError(f"{inst}: non-memory operation with an address")
    if inst.op.is_branch:
        if inst.taken is None:
            raise TraceError(f"{inst}: branch without an outcome")
        if inst.taken and inst.target is None:
            raise TraceError(f"{inst}: taken branch without a target")
        if inst.dest is not None:
            raise TraceError(f"{inst}: branches must not write a register")
    if inst.dest is not None and inst.dest.is_fp != inst.op.writes_fp_register:
        raise TraceError(f"{inst}: destination register class mismatch")
    if inst.op.is_store and inst.dest is not None:
        raise TraceError(f"{inst}: stores must not write a register")
