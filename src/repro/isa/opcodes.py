"""Operation classes of the simulated ISA.

The simulator is trace-driven, so it never interprets instruction
semantics; it only needs each instruction's *operation class* to know
which functional unit executes it and with what latency. The classes
mirror the SimpleScalar/Alpha classes the paper's framework uses.
"""

from __future__ import annotations

import enum

from repro.common.config import FunctionalUnitConfig

__all__ = ["OpClass", "FuType", "fu_type_for", "latency_for", "is_pipelined"]


class OpClass(enum.Enum):
    """Operation class of a dynamic instruction."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    FP_LOAD = "fp_load"
    FP_STORE = "fp_store"
    BRANCH = "branch"

    @property
    def is_fp(self) -> bool:
        """True if the instruction lives in the FP side of the machine.

        FP loads/stores compute their address on the integer side (as in
        real machines) but their *destination* is an FP register; the
        paper steers instructions by the cluster of the queue that holds
        them, so we classify loads/stores by where they are dispatched:
        address computation is an integer operation, hence all loads,
        stores and branches are integer-side instructions here.
        """
        return self in (OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores of either register class."""
        return self in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE)

    @property
    def is_load(self) -> bool:
        return self in (OpClass.LOAD, OpClass.FP_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (OpClass.STORE, OpClass.FP_STORE)

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def writes_fp_register(self) -> bool:
        """True if the destination register (if any) is an FP register."""
        return self in (OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV, OpClass.FP_LOAD)


class FuType(enum.Enum):
    """Functional-unit categories of Table 1."""

    INT_ALU = "int_alu"
    INT_MULDIV = "int_muldiv"
    FP_ALU = "fp_alu"
    FP_MULDIV = "fp_muldiv"

    @property
    def is_fp(self) -> bool:
        return self in (FuType.FP_ALU, FuType.FP_MULDIV)


_FU_FOR_OP = {
    OpClass.INT_ALU: FuType.INT_ALU,
    OpClass.INT_MUL: FuType.INT_MULDIV,
    OpClass.INT_DIV: FuType.INT_MULDIV,
    OpClass.FP_ALU: FuType.FP_ALU,
    OpClass.FP_MUL: FuType.FP_MULDIV,
    OpClass.FP_DIV: FuType.FP_MULDIV,
    # Memory ops and branches use an integer ALU for address / target
    # computation.
    OpClass.LOAD: FuType.INT_ALU,
    OpClass.STORE: FuType.INT_ALU,
    OpClass.FP_LOAD: FuType.INT_ALU,
    OpClass.FP_STORE: FuType.INT_ALU,
    OpClass.BRANCH: FuType.INT_ALU,
}


def fu_type_for(op: OpClass) -> FuType:
    """Functional-unit type that executes instructions of class ``op``."""
    return _FU_FOR_OP[op]


def latency_for(op: OpClass, fus: FunctionalUnitConfig) -> int:
    """Execution latency of ``op`` on the configured functional units.

    For loads this is the *address computation* latency only; the cache
    access is added by the memory system. Branches resolve in one ALU
    cycle. Stores take the address latency (data movement happens at
    commit and is off the critical path).
    """
    if op is OpClass.INT_ALU or op is OpClass.BRANCH:
        return fus.int_alu_latency
    if op is OpClass.INT_MUL:
        return fus.int_mul_latency
    if op is OpClass.INT_DIV:
        return fus.int_div_latency
    if op is OpClass.FP_ALU:
        return fus.fp_alu_latency
    if op is OpClass.FP_MUL:
        return fus.fp_mul_latency
    if op is OpClass.FP_DIV:
        return fus.fp_div_latency
    if op.is_memory:
        return fus.address_latency
    raise ValueError(f"unknown op class {op!r}")


def is_pipelined(op: OpClass) -> bool:
    """Whether the functional unit is pipelined for this class.

    Divides occupy their mul/div unit for the whole operation; everything
    else accepts a new instruction every cycle.
    """
    return op not in (OpClass.INT_DIV, OpClass.FP_DIV)
