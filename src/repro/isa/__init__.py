"""Instruction-set layer: op classes, latencies, dynamic instructions."""

from repro.isa.instructions import Instruction, RegisterRef, validate_instruction
from repro.isa.opcodes import FuType, OpClass, fu_type_for, is_pipelined, latency_for

__all__ = [
    "FuType",
    "Instruction",
    "OpClass",
    "RegisterRef",
    "fu_type_for",
    "is_pipelined",
    "latency_for",
    "validate_instruction",
]
