"""Set-associative cache with true-LRU replacement.

Only timing matters to the simulator, so lines carry tags but no data.
The cache counts accesses/hits/misses for the statistics and energy
accounting, and reports the latency of each access given a backing-store
latency supplied by the :class:`~repro.memory.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import CacheConfig

__all__ = ["Cache", "AccessResult"]


class AccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "latency")

    def __init__(self, hit: bool, latency: int) -> None:
        self.hit = hit
        self.latency = latency

    def __repr__(self) -> str:
        return f"AccessResult(hit={self.hit}, latency={self.latency})"


class Cache:
    """One cache level.

    LRU is modelled with a per-set ordered list (most recent last); a
    32 KB 4-way cache has 256 sets of 4 ways, so the lists stay tiny and
    the pure-Python overhead is acceptable.
    """

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._sets: List[List[int]] = [[] for __ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        # Geometry constants hoisted out of the per-access path (the
        # num_sets property divides, and bit_length is not free at the
        # millions-of-lookups scale of a campaign).
        self._set_bits = config.num_sets.bit_length() - 1
        self._hit_latency = config.hit_latency
        self._associativity = config.associativity
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int, miss_latency: int) -> AccessResult:
        """Access ``addr``; on a miss the line is filled.

        ``miss_latency`` is the additional latency the backing store
        charges for the fill (the hierarchy computes it). The returned
        latency includes this cache's hit latency in both cases, matching
        the usual "lookup, then go down on miss" timing.
        """
        hit, latency = self.access_latency(addr, lambda: miss_latency)
        return AccessResult(hit, latency)

    def access_latency(self, addr: int, miss_latency_fn) -> tuple:
        """Access ``addr``; returns ``(hit, latency)``.

        ``miss_latency_fn`` is only called on a miss, so the backing
        level is touched lazily — the hot path of the hierarchy (one
        index computation, one LRU update, no result object).
        """
        line = addr >> self._line_shift
        tag = line >> self._set_bits
        ways = self._sets[line & self._set_mask]
        self.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True, self._hit_latency
        self.misses += 1
        ways.append(tag)
        if len(ways) > self._associativity:
            ways.pop(0)
        return False, self._hit_latency + miss_latency_fn()

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no counters)."""
        line = addr >> self._line_shift
        return (line >> self._set_bits) in self._sets[line & self._set_mask]

    def state_snapshot(self) -> List[List[int]]:
        """Copy of the tag/LRU state (contents only, not counters)."""
        return [list(ways) for ways in self._sets]

    def restore_state(self, snapshot: List[List[int]]) -> None:
        """Restore tag/LRU state from :meth:`state_snapshot`; counters
        are zeroed, matching a freshly warmed, statistics-reset cache."""
        self._sets = [list(ways) for ways in snapshot]
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 if never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        """Zero the counters without touching cache contents."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate every line (contents only; statistics kept)."""
        for ways in self._sets:
            ways.clear()

    def contents_summary(self) -> Dict[str, int]:
        """Occupancy snapshot, used by tests."""
        lines = sum(len(ways) for ways in self._sets)
        return {
            "lines_valid": lines,
            "lines_total": self.config.num_sets * self.config.associativity,
        }
