"""Set-associative cache with true-LRU replacement.

Only timing matters to the simulator, so lines carry tags but no data.
The cache counts accesses/hits/misses for the statistics and energy
accounting, and reports the latency of each access given a backing-store
latency supplied by the :class:`~repro.memory.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import CacheConfig

__all__ = ["Cache", "AccessResult"]


class AccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "latency")

    def __init__(self, hit: bool, latency: int) -> None:
        self.hit = hit
        self.latency = latency

    def __repr__(self) -> str:
        return f"AccessResult(hit={self.hit}, latency={self.latency})"


class Cache:
    """One cache level.

    LRU is modelled with a per-set ordered list (most recent last); a
    32 KB 4-way cache has 256 sets of 4 ways, so the lists stay tiny and
    the pure-Python overhead is acceptable.
    """

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._sets: List[List[int]] = [[] for __ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def _index_tag(self, addr: int) -> tuple:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> self.config.num_sets.bit_length() - 1

    def lookup(self, addr: int, miss_latency: int) -> AccessResult:
        """Access ``addr``; on a miss the line is filled.

        ``miss_latency`` is the additional latency the backing store
        charges for the fill (the hierarchy computes it). The returned
        latency includes this cache's hit latency in both cases, matching
        the usual "lookup, then go down on miss" timing.
        """
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        self.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return AccessResult(True, self.config.hit_latency)
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return AccessResult(False, self.config.hit_latency + miss_latency)

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no counters)."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 if never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        """Zero the counters without touching cache contents."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate every line (contents only; statistics kept)."""
        for ways in self._sets:
            ways.clear()

    def contents_summary(self) -> Dict[str, int]:
        """Occupancy snapshot, used by tests."""
        lines = sum(len(ways) for ways in self._sets)
        return {
            "lines_valid": lines,
            "lines_total": self.config.num_sets * self.config.associativity,
        }
