"""Memory hierarchy substrate: caches and main-memory timing."""

from repro.memory.cache import AccessResult, Cache
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["AccessResult", "Cache", "MemoryHierarchy"]
