"""The L1I / L1D / unified-L2 / main-memory hierarchy of Table 1."""

from __future__ import annotations

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.memory.cache import Cache

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """Owns the caches and answers latency queries from the pipeline.

    The hierarchy is intentionally simple — blocking fills, no MSHR
    modelling — because the paper's schemes interact with memory only
    through *when a load's value becomes available*. Port contention on
    the L1D (4 R/W ports) is enforced by the pipeline's issue logic, not
    here.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.icache = Cache(config.icache)
        self.dcache = Cache(config.dcache)
        self.l2 = Cache(config.l2cache)
        self._memory_latency = config.memory.access_latency(config.l2cache.line_bytes)

    def _l2_fill_latency(self, addr: int) -> int:
        """Latency the L2 charges for a fill request from an L1 miss."""
        __, latency = self.l2.access_latency(addr, lambda: self._memory_latency)
        return latency

    def instruction_fetch_latency(self, pc: int) -> int:
        """Cycles to fetch the line containing ``pc``.

        The L2 is only touched on a real L1 miss (lazy fill latency).
        """
        __, latency = self.icache.access_latency(
            pc, lambda: self._l2_fill_latency(pc)
        )
        return latency

    def data_access_latency(self, addr: int, is_store: bool = False) -> int:
        """Cycles for a load/store to reach its data.

        Stores are modelled as write-allocate: they take the same path as
        loads for timing purposes, though the pipeline retires them at
        commit so their latency rarely matters.
        """
        __, latency = self.dcache.access_latency(
            addr, lambda: self._l2_fill_latency(addr)
        )
        return latency

    def state_snapshot(self) -> tuple:
        """Tag/LRU state of all three caches (for pre-warm reuse)."""
        return (
            self.icache.state_snapshot(),
            self.dcache.state_snapshot(),
            self.l2.state_snapshot(),
        )

    def restore_state(self, snapshot: tuple) -> None:
        """Restore all three caches from :meth:`state_snapshot`."""
        icache, dcache, l2 = snapshot
        self.icache.restore_state(icache)
        self.dcache.restore_state(dcache)
        self.l2.restore_state(l2)

    def dcache_hit_latency(self) -> int:
        """The L1D hit latency (the load latency assumed at dispatch)."""
        return self.config.dcache.hit_latency

    def collect_events(self, events: StatCounters) -> None:
        """Export access counts for the energy model."""
        events.add("icache_accesses", self.icache.accesses)
        events.add("icache_misses", self.icache.misses)
        events.add("dcache_accesses", self.dcache.accesses)
        events.add("dcache_misses", self.dcache.misses)
        events.add("l2_accesses", self.l2.accesses)
        events.add("l2_misses", self.l2.misses)
        self.icache.reset_statistics()
        self.dcache.reset_statistics()
        self.l2.reset_statistics()
