"""The L1I / L1D / unified-L2 / main-memory hierarchy of Table 1."""

from __future__ import annotations

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.memory.cache import Cache

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """Owns the caches and answers latency queries from the pipeline.

    The hierarchy is intentionally simple — blocking fills, no MSHR
    modelling — because the paper's schemes interact with memory only
    through *when a load's value becomes available*. Port contention on
    the L1D (4 R/W ports) is enforced by the pipeline's issue logic, not
    here.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.icache = Cache(config.icache)
        self.dcache = Cache(config.dcache)
        self.l2 = Cache(config.l2cache)
        self._memory_latency = config.memory.access_latency(config.l2cache.line_bytes)

    def _l2_fill_latency(self, addr: int) -> int:
        """Latency the L2 charges for a fill request from an L1 miss."""
        result = self.l2.lookup(addr, self._memory_latency)
        return result.latency

    def instruction_fetch_latency(self, pc: int) -> int:
        """Cycles to fetch the line containing ``pc``."""
        miss_latency = 0 if self.icache.probe(pc) else None
        if miss_latency is None:
            # Compute the L2 (and possibly memory) latency lazily so the
            # L2 is only touched on a real L1 miss.
            result = self.icache.lookup(pc, self._l2_fill_latency(pc))
        else:
            result = self.icache.lookup(pc, 0)
        return result.latency

    def data_access_latency(self, addr: int, is_store: bool = False) -> int:
        """Cycles for a load/store to reach its data.

        Stores are modelled as write-allocate: they take the same path as
        loads for timing purposes, though the pipeline retires them at
        commit so their latency rarely matters.
        """
        if self.dcache.probe(addr):
            result = self.dcache.lookup(addr, 0)
        else:
            result = self.dcache.lookup(addr, self._l2_fill_latency(addr))
        return result.latency

    def dcache_hit_latency(self) -> int:
        """The L1D hit latency (the load latency assumed at dispatch)."""
        return self.config.dcache.hit_latency

    def collect_events(self, events: StatCounters) -> None:
        """Export access counts for the energy model."""
        events.add("icache_accesses", self.icache.accesses)
        events.add("icache_misses", self.icache.misses)
        events.add("dcache_accesses", self.dcache.accesses)
        events.add("dcache_misses", self.dcache.misses)
        events.add("l2_accesses", self.l2.accesses)
        events.add("l2_misses", self.l2.misses)
        self.icache.reset_statistics()
        self.dcache.reset_statistics()
        self.l2.reset_statistics()
