"""Structure-of-arrays hosts for scoreboard and issue-queue hot state.

The wakeup/select inner loops of the interpreted pipeline walk Python
lists of :class:`~repro.core.uop.InFlight` objects and ask the scoreboard
about one operand at a time. This module re-hosts exactly that state as
numpy arrays so the loops become batched comparisons:

* :class:`VectorScoreboard` — keeps the Python ready-cycle lists
  *authoritative* (every scalar read stays plain-``int``, so cycle
  arithmetic, dict keys and JSON payloads can never grow ``np.int64``)
  and mirrors them into one flat ``int64`` vector for batched gathers.
  The last vector slot is a sentinel that always reads "ready at 0", so
  fixed-width operand rows can pad with it harmlessly.
* :class:`VectorConventionalIssueQueue` — a class-swap subclass of the
  CAM/RAM baseline maintaining per-side operand-index matrices
  incrementally (append at dispatch, mask-compaction at issue), giving
  vectorized wakeup accounting, ready-bound scans, selection pregating
  and drain-span wakeup bounds.
* :class:`VectorFifoSide` / :class:`VectorLatencyPlacedFifoSide` —
  class-swap subclasses of the FIFO sides batching the per-head
  ready-table accounting and the head wakeup bound.

Operand rows are filled *lazily*: at ``try_dispatch`` time the uop's
``src_phys`` is still empty (rename happens right after placement in
``Processor._dispatch``), so rows are recorded pending and materialized
at the first batched read — always a later pipeline stage, by which time
renaming has run.

Everything here is an execution strategy, not behaviour: each override
is observationally identical to the interpreted method it replaces (same
events, same issued sets, same wheel answers), which the kernel
differential net enforces bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional

try:  # gate, don't require: only the vectorized backend needs numpy
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None

from repro.core.scoreboard import NEVER, Scoreboard
from repro.issue.conventional import ConventionalIssueQueue
from repro.issue.fifo_side import FifoSide
from repro.issue.latfifo import LatencyPlacedFifoSide

__all__ = [
    "VectorScoreboard",
    "VectorConventionalIssueQueue",
    "VectorFifoSide",
    "VectorLatencyPlacedFifoSide",
    "numpy_available",
]

_NEVER = NEVER


def numpy_available() -> bool:
    return np is not None


class VectorScoreboard(Scoreboard):
    """Scoreboard with a flat numpy mirror of both register banks.

    Layout: ``_vec[i]`` is the ready cycle of integer phys ``i``,
    ``_vec[n_int + j]`` of FP phys ``j``; ``_vec[-1]`` is the always-ready
    sentinel slot (value 0) used to pad fixed-width operand rows. The
    inherited Python lists stay authoritative for every scalar read.
    """

    __slots__ = ("_vec", "_n_int")

    @classmethod
    def from_scoreboard(cls, scoreboard: Scoreboard) -> "VectorScoreboard":
        """Adopt an existing scoreboard's state (snapshot adapter)."""
        new = cls.__new__(cls)
        new._int = scoreboard._int
        new._fp = scoreboard._fp
        new._version = scoreboard._version
        new._n_int = len(new._int)
        vec = np.empty(new._n_int + len(new._fp) + 1, dtype=np.int64)
        vec[: new._n_int] = new._int
        vec[new._n_int : -1] = new._fp
        vec[-1] = 0
        new._vec = vec
        return new

    @property
    def sentinel_index(self) -> int:
        """Flat index of the always-ready padding slot."""
        return len(self._vec) - 1

    def flat_index(self, phys) -> int:
        is_fp, index = phys
        return index + self._n_int if is_fp else index

    # Mutators keep list and vector coherent; a single version bump each
    # (no super() call — a double bump would skew the conventional
    # scheme's version-keyed ready-bound cache revalidation pattern).
    def mark_pending(self, phys) -> None:
        is_fp, index = phys
        if is_fp:
            self._fp[index] = _NEVER
            self._vec[index + self._n_int] = _NEVER
        else:
            self._int[index] = _NEVER
            self._vec[index] = _NEVER
        self._version += 1

    def set_ready(self, phys, cycle: int) -> None:
        is_fp, index = phys
        if is_fp:
            self._fp[index] = cycle
            self._vec[index + self._n_int] = cycle
        else:
            self._int[index] = cycle
            self._vec[index] = cycle
        self._version += 1

    # -- snapshot/restore adapters ------------------------------------
    def export_state(self) -> dict:
        """Plain-int snapshot of the readiness state (JSON-safe)."""
        return {
            "int": [int(v) for v in self._int],
            "fp": [int(v) for v in self._fp],
            "version": int(self._version),
        }

    def restore_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot, rebuilding the mirror."""
        self._int[:] = state["int"]
        self._fp[:] = state["fp"]
        self._version = state["version"]
        self._vec[: self._n_int] = self._int
        self._vec[self._n_int : -1] = self._fp
        self._vec[-1] = 0


def _flat_pair(srcs, n_int: int, sentinel: int) -> List[int]:
    """Two flat operand indices for a ≤2-operand list, sentinel-padded."""
    row = [sentinel, sentinel]
    for k, (is_fp, index) in enumerate(srcs):
        row[k] = index + n_int if is_fp else index
    return row


class VectorConventionalIssueQueue(ConventionalIssueQueue):
    """SoA adapter for the CAM/RAM baseline (installed by class swap).

    Per side, two ``(capacity, 2)`` matrices of flat operand indices into
    the :class:`VectorScoreboard` vector — one over ``src_phys`` (wakeup
    accounting) and one over ``issue_srcs`` (ready scans) — maintained
    incrementally: rows append at dispatch (filled lazily, see module
    docstring) and compact under a boolean keep-mask when entries issue.
    """

    def _init_vector_state(self, vsb: VectorScoreboard) -> None:
        self._vsb = vsb
        sentinel = vsb.sentinel_index
        caps = (max(self._int_capacity, 1), max(self._fp_capacity, 1))
        self._soa_src = [np.full((cap, 2), sentinel, dtype=np.intp) for cap in caps]
        self._soa_iss = [np.full((cap, 2), sentinel, dtype=np.intp) for cap in caps]
        self._soa_n = [0, 0]
        self._soa_pending = [[], []]
        # Mirror residents present at install time (normally none — the
        # backend installs on a freshly built processor).
        for side, queue in enumerate((self._int_queue, self._fp_queue)):
            for row, uop in enumerate(queue):
                self._soa_n[side] = row + 1
                self._soa_pending[side].append((row, uop))

    def _flush(self, side: int) -> None:
        pending = self._soa_pending[side]
        if not pending:
            return
        vsb = self._vsb
        n_int = vsb._n_int
        sentinel = vsb.sentinel_index
        src = self._soa_src[side]
        iss = self._soa_iss[side]
        for row, uop in pending:
            src[row] = _flat_pair(uop.src_phys, n_int, sentinel)
            iss[row] = _flat_pair(uop.issue_srcs, n_int, sentinel)
        pending.clear()

    # -- overrides ----------------------------------------------------
    def try_dispatch(self, uop, cycle: int) -> bool:
        side = 1 if uop.op.is_fp else 0
        queue, capacity = (
            (self._fp_queue, self._fp_capacity)
            if side
            else (self._int_queue, self._int_capacity)
        )
        if len(queue) >= capacity:
            return False
        queue.append(uop)
        self._queue_rev[side] += 1
        self.events.add("iq_buff_write")
        row = self._soa_n[side]
        self._soa_n[side] = row + 1
        # src_phys is renamed right after placement; fill the row at the
        # first batched read instead of now.
        self._soa_pending[side].append((row, uop))
        return True

    def select_and_issue(self, ctx):
        issued = []
        cycle = ctx.cycle
        vec = self._vsb._vec
        for side, queue in enumerate((self._int_queue, self._fp_queue)):
            if not queue:
                continue
            self.events.add("iq_select_cycles")
            self._flush(side)
            n = self._soa_n[side]
            maxes = vec[self._soa_iss[side][:n]].max(axis=1)
            if self._scan_shortcircuit and int(maxes.min()) > cycle:
                # Same bound as the interpreted ``_scan_may_issue``: the
                # minimum over entries of their all-operands-ready cycle.
                continue
            # Pregate: during the issue stage readiness at ``cycle`` is
            # frozen (set_ready only writes cycles >= cycle+1), so an
            # entry whose operands are not ready now provably fails
            # ``ctx.issue`` — which has zero side effects on failure.
            ready = (maxes <= cycle).tolist()
            taken = []
            for i, uop in enumerate(queue):
                if ready[i] and ctx.issue(uop):
                    taken.append(i)
                    issued.append(uop)
            if taken:
                keep = np.ones(n, dtype=bool)
                keep[taken] = False
                m = n - len(taken)
                src = self._soa_src[side]
                iss = self._soa_iss[side]
                src[:m] = src[:n][keep]
                iss[:m] = iss[:n][keep]
                self._soa_n[side] = m
                for i in reversed(taken):
                    queue.pop(i)
                self._queue_rev[side] += 1
            self.events.add("iq_buff_read", len(taken))
        return issued

    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        if broadcasts == 0:
            return
        self.events.add("iq_wakeup_broadcasts", broadcasts)
        vec = self._vsb._vec
        unready = 0
        for side in (0, 1):
            self._flush(side)
            n = self._soa_n[side]
            if n:
                # Sentinel slots read 0, never > cycle, so padding does
                # not count as an unready operand.
                unready += int((vec[self._soa_src[side][:n]] > cycle).sum())
        self.events.add("iq_wakeup_comparisons", broadcasts * unready)

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        vec = self._vsb._vec
        earliest: Optional[int] = None
        for side in (0, 1):
            self._flush(side)
            n = self._soa_n[side]
            if not n:
                continue
            maxes = vec[self._soa_iss[side][:n]].max(axis=1)
            candidates = maxes[(maxes >= cycle) & (maxes < _NEVER)]
            if candidates.size:
                when = int(candidates.min())
                if earliest is None or when < earliest:
                    earliest = when
        return earliest


class _VectorHeadMixin:
    """Batched head accounting + vector wakeup for FIFO-style sides."""

    def issue_heads(self, ctx, distributed: bool):
        queues = self.queues
        heads = []
        total_reads = 0
        for index, queue in enumerate(queues):
            if queue:
                head = queue[0]
                heads.append((head.age, index))
                total_reads += len(head.src_phys)
        if not heads:
            return []
        # One summed add in place of one add per head: pure sums, and
        # the zero-skip contract of StatCounters.add holds either way.
        self.events.add("regs_ready_read", total_reads)
        heads.sort()
        issued = []
        for __, index in heads:
            head = queues[index][0]
            queue_arg = index if distributed else None
            if ctx.issue(head, queue_arg):
                queues[index].popleft()
                self.events.add(f"{self._event_prefix}_read")
                issued.append(head)
        return issued

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        vec = getattr(scoreboard, "_vec", None)
        if vec is None:  # plain scoreboard: interpreted fallback
            return super().next_wakeup_cycle(cycle, scoreboard)
        n_int = scoreboard._n_int
        sentinel = scoreboard.sentinel_index
        rows = [
            _flat_pair(queue[0].issue_srcs, n_int, sentinel)
            for queue in self.queues
            if queue
        ]
        if not rows:
            return None
        maxes = vec[np.asarray(rows, dtype=np.intp)].max(axis=1)
        candidates = maxes[(maxes >= cycle) & (maxes < _NEVER)]
        if candidates.size:
            return int(candidates.min())
        return None


class VectorFifoSide(_VectorHeadMixin, FifoSide):
    """Class-swap target for plain FIFO sides."""


class VectorLatencyPlacedFifoSide(_VectorHeadMixin, LatencyPlacedFifoSide):
    """Class-swap target for the LatFIFO estimate-placed FP side."""
