"""The simulation-backend contract.

A *backend* is a detailed-path execution strategy for one
:class:`~repro.core.processor.Processor` run — the same role the built-in
``naive``/``skip`` loops of :mod:`repro.core.engine` play, packaged
behind a small formal interface so alternative hosts for the hot loop
(numpy structure-of-arrays batching, per-config generated kernels, a
future compiled core) can slot under ``ProcessorConfig.kernel`` without
touching the engine.

The contract, in full:

* ``run(processor, total, max_cycles, warmup_instructions)`` simulates
  until ``total`` instructions commit and returns
  :class:`~repro.common.stats.SimulationStats` — with the **same
  signature and semantics** as :func:`repro.core.engine.run_naive`. It
  must fill ``processor.kernel_telemetry`` and raise
  :class:`~repro.common.errors.SimulationError` on forward-progress
  failure, exactly like the built-in kernels.
* **Bit identity**: every statistic the run reports must be
  field-for-field equal to the ``naive`` kernel's on the same inputs.
  A backend is an execution strategy, never simulated behaviour; the
  randomized differential net (``tests/test_kernel_equivalence.py``) and
  the discovery kernel-equivalence oracle enforce this.
* Backends may replace or subclass pipeline components on the processor
  instance they are handed (the vectorized backend swaps in a
  numpy-mirrored scoreboard and SoA issue-queue adapters), but only
  state private to that instance: checkpoints restored *before*
  ``Processor.run`` (sampled slices) and prewarm memoization touch the
  memory hierarchy and predictor only, which backends must not rehost.
* Backend names are first-class kernel names: they validate through
  ``ProcessorConfig.kernel``, stay excluded from cache fingerprints
  (``_FINGERPRINT_EXCLUDE``), and the backends package is part of the
  source material of ``SIMULATOR_VERSION_TAG`` so editing a backend
  invalidates cached results.
"""

from __future__ import annotations

__all__ = ["SimulationBackend"]


class SimulationBackend:
    """One detailed-path execution strategy (see module docstring)."""

    #: Kernel name this backend registers as (``ProcessorConfig.kernel``).
    name = "abstract"

    def run(self, processor, total: int, max_cycles: int, warmup_instructions: int):
        """Simulate ``processor`` until ``total`` instructions commit.

        Same signature, return value, telemetry and error behaviour as
        :func:`repro.core.engine.run_naive`; must be bit-identical to it
        on every reported statistic.
        """
        raise NotImplementedError
