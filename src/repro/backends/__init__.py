"""Specialized detailed-path simulation backends.

Alternative hosts for the hot per-cycle loop, slotting under
``ProcessorConfig.kernel`` next to the built-in ``naive``/``skip``
kernels of :mod:`repro.core.engine`:

* ``vectorized`` — scoreboard and issue-queue hot state re-hosted as
  numpy structure-of-arrays (:mod:`repro.backends.soa`) under the
  proven event-driven skip driver.
* ``specialized`` — a per-configuration generated Python kernel with
  geometry, widths, latencies and scheme dispatch baked in as literals
  (:mod:`repro.backends.codegen`), compiled once and cached
  content-addressed beside the result store.

Both are execution strategies, not behaviour: bit-identical to
``naive`` on every statistic, enforced by the randomized differential
net and the discovery kernel-equivalence oracle. See
:mod:`repro.backends.base` for the full contract.
"""

from __future__ import annotations

from repro.common.config import VALID_KERNELS
from repro.common.errors import SimulationError

from repro.backends.base import SimulationBackend
from repro.backends.specialized import SpecializedBackend
from repro.backends.vectorized import VectorizedBackend

__all__ = ["SimulationBackend", "BACKENDS", "get_backend"]

#: Registered backends by kernel name.
BACKENDS = {
    backend.name: backend
    for backend in (VectorizedBackend(), SpecializedBackend())
}


def get_backend(name: str) -> SimulationBackend:
    """The backend registered under kernel name ``name``.

    Raises :class:`SimulationError` with the engine's "unknown simulation
    kernel" phrasing so callers see one error shape regardless of whether
    a bad name misses the built-in kernels or the backend registry.
    """
    backend = BACKENDS.get(name)
    if backend is None:
        raise SimulationError(
            f"unknown simulation kernel {name!r}; valid kernels: "
            + ", ".join(sorted(VALID_KERNELS))
        )
    return backend
