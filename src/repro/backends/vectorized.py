"""The ``vectorized`` backend: SoA batching under the skip driver.

Installation is per-``Processor``-instance and purely structural: the
scoreboard is *replaced* by a :class:`~repro.backends.soa.VectorScoreboard`
adopting its state (it has exactly two persistent holders — the
processor attribute and the scheme's ``bind_scoreboard`` slot — both
rebound here), and the scheme's hot containers get their classes swapped
to the SoA subclasses, which keeps every construction path and all
existing references intact. The drive loop is the proven event-driven
skipper of :mod:`repro.core.engine`; only the inner loops change host.

The MixBUFF FP side intentionally stays interpreted (its per-queue
chain selector is already small and branchy); its integer FIFO side and
the scoreboard still vectorize — a documented partial specialization.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.core import engine
from repro.issue.conventional import ConventionalIssueQueue
from repro.issue.fifo_side import FifoSide
from repro.issue.latfifo import LatencyPlacedFifoSide
from repro.issue.mixbuff import MixBuffScheme

from repro.backends.base import SimulationBackend
from repro.backends.soa import (
    VectorConventionalIssueQueue,
    VectorFifoSide,
    VectorLatencyPlacedFifoSide,
    VectorScoreboard,
    numpy_available,
)

__all__ = ["VectorizedBackend", "install_vector_state"]


def install_vector_state(processor) -> None:
    """Swap the processor's hot state onto the SoA hosts (idempotent)."""
    if not numpy_available():  # pragma: no cover - numpy ships in-image
        raise SimulationError(
            "the 'vectorized' kernel requires numpy, which is not installed"
        )
    if isinstance(processor.scoreboard, VectorScoreboard):
        return  # already installed (e.g. a retried run on one instance)
    vsb = VectorScoreboard.from_scoreboard(processor.scoreboard)
    processor.scoreboard = vsb
    scheme = processor.scheme
    if isinstance(scheme, ConventionalIssueQueue):
        scheme.__class__ = VectorConventionalIssueQueue
        scheme._init_vector_state(vsb)
    else:
        int_side = getattr(scheme, "int_side", None)
        if type(int_side) is FifoSide:
            int_side.__class__ = VectorFifoSide
        fp_side = getattr(scheme, "fp_side", None)
        if type(fp_side) is FifoSide and not isinstance(scheme, MixBuffScheme):
            fp_side.__class__ = VectorFifoSide
        elif type(fp_side) is LatencyPlacedFifoSide:
            fp_side.__class__ = VectorLatencyPlacedFifoSide
        # MixBUFF's FP buffers stay interpreted (partial specialization).
    if hasattr(scheme, "bind_scoreboard"):
        scheme.bind_scoreboard(vsb)


class VectorizedBackend(SimulationBackend):
    """Numpy structure-of-arrays batching behind the skip driver."""

    name = "vectorized"

    def run(self, processor, total, max_cycles, warmup_instructions):
        install_vector_state(processor)
        return engine.run_skipping(processor, total, max_cycles, warmup_instructions)
