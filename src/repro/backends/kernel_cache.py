"""Content-addressed cache of generated specialized-kernel sources.

Generated kernels are pure functions of ``(generator source, kernel
spec)``, so they are cached exactly like simulation results: addressed
by content, written atomically, and *never trusted* — a damaged or
truncated cache file reads as a miss and the kernel is regenerated.

Layout, beside the result store under the same root::

    $REPRO_CACHE_DIR/kernels/<generator digest[:12]>/<spec digest>.py

Each file carries a self-describing first line::

    # repro-specialized-kernel v1 content=<sha256 of the remainder>

verified on load. The generator digest in the path means editing
:mod:`repro.backends.codegen` orphans (not corrupts) every previously
cached kernel. Disk caching is gated on ``$REPRO_CACHE_DIR`` being set,
mirroring :meth:`ResultStore.from_env`'s hermetic-by-default policy; a
per-process memo keyed ``(generator digest, spec digest)`` makes warm
in-process reuse free either way. Writes stage through ``mkstemp`` +
``os.replace`` and the kernels tree participates in the stale ``*.tmp``
sweep (both via the result store's root sweep and directly here, for
runs configured without a result store).
"""

from __future__ import annotations

import hashlib
import os
import types
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.backends import codegen
from repro.experiments.store import _ENV_VAR, record_cache_event, sweep_stale_tmp

__all__ = [
    "KERNEL_HEADER_PREFIX",
    "cache_root",
    "kernel_path",
    "load_kernel_module",
    "clear_memo",
]

KERNEL_HEADER_PREFIX = "# repro-specialized-kernel v1 content="

_memo: Dict[Tuple[str, str], types.ModuleType] = {}
_swept_roots = set()


def clear_memo() -> None:
    """Drop the in-process module memo (tests use this to force codegen)."""
    _memo.clear()
    _swept_roots.clear()


def cache_root() -> Optional[Path]:
    """Kernel cache directory, or ``None`` when caching is off.

    Same gate as the result store's ``from_env``: no ``$REPRO_CACHE_DIR``
    means fully hermetic — generate in memory, touch no disk.
    """
    env = os.environ.get(_ENV_VAR)
    if not env:
        return None
    return Path(env) / "kernels"


def kernel_path(spec: dict, root: Optional[Path] = None) -> Optional[Path]:
    """On-disk location of the kernel for ``spec`` (``None`` if no cache)."""
    if root is None:
        root = cache_root()
    if root is None:
        return None
    return root / codegen.generator_digest()[:12] / f"{codegen.spec_digest(spec)}.py"


def _read_cached(path: Path) -> Optional[str]:
    """Cached source, or ``None`` on any damage — a miss, never an error."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    header, sep, body = text.partition("\n")
    if not sep or not header.startswith(KERNEL_HEADER_PREFIX):
        return None
    expected = header[len(KERNEL_HEADER_PREFIX):].strip()
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != expected:
        return None
    return body


def _write_cached(path: Path, source: str) -> None:
    """Atomic best-effort write; a failed cache write never fails the run."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    payload = f"{KERNEL_HEADER_PREFIX}{digest}\n{source}"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        import tempfile

        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass


def _compile(source: str, spec_sha: str) -> types.ModuleType:
    name = f"repro_specialized_kernel_{spec_sha[:12]}"
    module = types.ModuleType(name)
    module.__file__ = f"<generated {name}>"
    code = compile(source, module.__file__, "exec")
    exec(code, module.__dict__)
    return module


def load_kernel_module(spec: dict) -> types.ModuleType:
    """The compiled kernel module for ``spec`` (memo → disk → generate)."""
    gen = codegen.generator_digest()
    spec_sha = codegen.spec_digest(spec)
    key = (gen, spec_sha)
    module = _memo.get(key)
    if module is not None:
        return module
    root = cache_root()
    source = None
    path = None
    if root is not None:
        if root not in _swept_roots:
            # Specialized runs configured without a ResultStore still get
            # orphaned-temp hygiene for their corner of the cache.
            sweep_stale_tmp(root)
            _swept_roots.add(root)
        path = kernel_path(spec, root)
        source = _read_cached(path)
        record_cache_event("kernels", "hit" if source is not None else "miss")
    if source is None:
        source = codegen.generate_source(spec)
        if path is not None:
            _write_cached(path, source)
            record_cache_event("kernels", "write")
    module = _compile(source, spec_sha)
    _memo[key] = module
    return module
