"""The ``specialized`` backend: per-configuration compiled kernels.

Profiles of the detailed path show CPython *call* overhead — the
``IssueContext`` tower, per-operand scoreboard accessors,
``StatCounters.add`` — dwarfing the actual work, so this backend
generates one flat Python module per processor configuration
(:mod:`repro.backends.codegen`), compiles it once, caches it
content-addressed beside the result store
(:mod:`repro.backends.kernel_cache`), and drives the run through it.
Warm runs skip codegen entirely: in-process via the module memo, across
processes via the on-disk cache.
"""

from __future__ import annotations

from repro.backends import codegen, kernel_cache
from repro.backends.base import SimulationBackend

__all__ = ["SpecializedBackend"]


class SpecializedBackend(SimulationBackend):
    """Per-config generated kernel, bit-identical to ``naive`` by clone."""

    name = "specialized"

    def run(self, processor, total, max_cycles, warmup_instructions):
        spec = codegen.kernel_spec(processor.config)
        module = kernel_cache.load_kernel_module(spec)
        kernel = module.make_kernel(processor)
        return kernel(total, max_cycles, warmup_instructions)
