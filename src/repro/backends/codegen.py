"""Per-configuration kernel generation for the ``specialized`` backend.

:func:`generate_source` emits a Python module specialized to one
:class:`~repro.common.config.ProcessorConfig`: geometry constants,
issue/commit widths, D-cache port count and every functional-unit
latency are baked in as literals, the issue-scheme dispatch is resolved
at generation time (only the configured scheme's selection code is
emitted — dead branches folded), and the per-cycle hot path is flattened
into one ``_step`` closure: the ``IssueContext`` call tower, the
per-operand scoreboard accessors, ``_schedule_completion`` and the
``StatCounters.add`` layer are all inlined into direct list/dict
operations. CPython call overhead dominates the interpreted detailed
path, so the flattening — not algorithmic change — is the speedup.

The generated module exposes ``make_kernel(processor)`` returning a
``run(total, max_cycles, warmup_instructions)`` driver that clones the
event-driven skipping loop of :mod:`repro.core.engine` verbatim
(quiescence proof, measured-delta interval accounting, pure-broadcast
drain spans, fault hooks), so a specialized run is bit-identical to
``naive``/``skip`` by the same construction the skip kernel relies on.

Inlining ground rules (the bit-identity contract):

* every inlined counter add mirrors ``StatCounters.add``'s zero-skip
  (``if amount:``) so the event dict never grows zero-valued keys;
* every scoreboard write bumps ``_version`` exactly once (the
  conventional scheme's ready-bound cache keys on it);
* ``_scan_shortcircuit`` is read from the scheme at *run* time — the
  equivalence tests toggle it;
* anything stateful that is not hot stays a call: placement heuristics
  (``scheme.try_dispatch``), rename, commit, fetch, LSQ bookkeeping,
  the MixBUFF FP selector (which gets a real ``IssueContext``).

Generated sources are cached content-addressed by
:mod:`repro.backends.kernel_cache`; this module's own bytes are part of
the cache address, so editing the generator regenerates every kernel.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.common.config import (
    SCHEME_CONVENTIONAL,
    SCHEME_ISSUEFIFO,
    SCHEME_LATFIFO,
    SCHEME_MIXBUFF,
    ProcessorConfig,
)
from repro.isa.opcodes import FuType, OpClass, fu_type_for, is_pipelined, latency_for

__all__ = [
    "CODEGEN_RUNS",
    "kernel_spec",
    "spec_digest",
    "generator_digest",
    "generate_source",
]

#: Number of times a kernel source was actually generated in this
#: process. The codegen-cache tests pin "warm run performs zero codegen"
#: against this counter.
CODEGEN_RUNS = 0

_FU_SLOT = {
    FuType.INT_ALU: 0,
    FuType.INT_MULDIV: 1,
    FuType.FP_ALU: 2,
    FuType.FP_MULDIV: 3,
}

_MUX_EVENT = {
    FuType.INT_ALU: "mux_int_alu",
    FuType.INT_MULDIV: "mux_int_mul",
    FuType.FP_ALU: "mux_fp_alu",
    FuType.FP_MULDIV: "mux_fp_mul",
}


def kernel_spec(config: ProcessorConfig) -> dict:
    """The subset of the config the generated source depends on.

    Two configs with equal specs compile to byte-identical kernels, so
    e.g. all benchmarks of one figure share one cached kernel per
    scheme. Anything that cannot change the emitted source (cache
    geometry, branch predictor, register-file sizes) stays out.
    """
    scheme = config.scheme
    fus = config.fus
    return {
        "v": 1,
        "scheme_kind": scheme.kind,
        "int_queues": scheme.int_queues,
        "int_queue_entries": scheme.int_queue_entries,
        "fp_queues": scheme.fp_queues,
        "fp_queue_entries": scheme.fp_queue_entries,
        "unbounded": bool(scheme.unbounded),
        "distributed": bool(scheme.distributed_fus),
        "max_chains": scheme.max_chains_per_queue,
        "decode_width": config.decode_width,
        "commit_width": config.commit_width,
        "int_issue_width": config.int_issue_width,
        "fp_issue_width": config.fp_issue_width,
        "dcache_ports": config.dcache.ports,
        "rob_entries": config.rob_entries,
        "address_latency": fus.address_latency,
        "latencies": {op.name: latency_for(op, fus) for op in OpClass},
    }


def spec_digest(spec: dict) -> str:
    """Content address of one kernel spec."""
    return hashlib.sha256(
        json.dumps(spec, sort_keys=True).encode("utf-8")
    ).hexdigest()


_GENERATOR_DIGEST = None


def generator_digest() -> str:
    """SHA-256 of this generator's own source bytes.

    Part of every kernel's cache address: editing the generator stales
    every cached kernel, which the codegen-cache tests rely on.
    """
    global _GENERATOR_DIGEST
    if _GENERATOR_DIGEST is None:
        _GENERATOR_DIGEST = hashlib.sha256(
            Path(__file__).resolve().read_bytes()
        ).hexdigest()
    return _GENERATOR_DIGEST


def _indent(block: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line if line.strip() else "" for line in block.splitlines())


def _opinfo_literal(spec: dict) -> str:
    """``_OPINFO`` dict literal: per-op static facts with baked latencies.

    Tuple layout (unpacked in the hot loops):
    ``(is_fp, is_memory, is_load, is_store, is_branch, latency,
    mux_event, pipelined, fu_slot)``.
    """
    lines = ["_OPINFO = {"]
    for op in OpClass:
        fu = fu_type_for(op)
        lines.append(
            f"    OpClass.{op.name}: ({op.is_fp}, {op.is_memory}, {op.is_load}, "
            f"{op.is_store}, {op.is_branch}, {spec['latencies'][op.name]}, "
            f"{_MUX_EVENT[fu]!r}, {is_pipelined(op)}, {_FU_SLOT[fu]}),"
        )
    lines.append("}")
    return "\n".join(lines)


def _fu_alloc_block(spec: dict, queue_var: str) -> str:
    """FU reservation, specialized pooled vs distributed; fails with
    ``continue`` (mirrors a failed ``try_allocate`` — no side effects)."""
    if spec["distributed"]:
        return f"""\
if fus == 0:
    unit = _fu_int_alu[{queue_var}]
elif fus == 1:
    unit = _fu_int_muldiv[{queue_var} // 2]
elif fus == 2:
    unit = _fu_fp_alu[{queue_var} // 2]
else:
    unit = _fu_fp_muldiv[{queue_var} // 2]
if not (cycle > unit.busy_until and cycle > unit.last_issue_cycle):
    continue
unit.last_issue_cycle = cycle
if not pip:
    unit.busy_until = cycle + lat - 1"""
    return """\
allocated = False
for unit in _units[fus]:
    if cycle > unit.busy_until and cycle > unit.last_issue_cycle:
        unit.last_issue_cycle = cycle
        if not pip:
            unit.busy_until = cycle + lat - 1
        allocated = True
        break
if not allocated:
    continue"""


def _completion_block(spec: dict, fp_only: bool) -> str:
    """Inlined ``Processor._schedule_completion`` for the issued ``head``."""
    if fp_only:
        # FP-side ops are never memory or branches (OpClass.is_fp).
        return """\
complete = cycle + lat
head.complete_cycle = complete
_ev[mux] = _ev.get(mux, 0) + 1
dp = head.dest_phys
if dp is not None:
    fp_, ix = dp
    (sb_fp if fp_ else sb_int)[ix] = complete
    sb._version += 1
    bc_wheel[complete] = bc_wheel.get(complete, 0) + 1"""
    return f"""\
if is_ld:
    start, fwd = lsq.load_access_constraints(head, cycle + {spec['address_latency']})
    if fwd is not None:
        _sp = fwd.src_phys
        if _sp:
            fp_, ix = _sp[0]
            data_ready = (sb_fp if fp_ else sb_int)[ix]
        else:
            data_ready = start
        complete = (start if start >= data_ready else data_ready) + 1
    else:
        complete = start + hierarchy.data_access_latency(inst.mem_addr)
elif is_st:
    complete = cycle + {spec['address_latency']}
    lsq.store_issued(head, complete)
else:
    complete = cycle + lat
head.complete_cycle = complete
_ev[mux] = _ev.get(mux, 0) + 1
dp = head.dest_phys
if dp is not None:
    fp_, ix = dp
    (sb_fp if fp_ else sb_int)[ix] = complete
    sb._version += 1
    bc_wheel[complete] = bc_wheel.get(complete, 0) + 1
if is_br:
    if complete in br_res:
        br_res[complete].append(head)
    else:
        br_res[complete] = [head]"""


def _fifo_heads_block(spec: dict, queues_var: str, fp_side: bool) -> str:
    """One FIFO side's ``issue_heads``, fully inlined.

    Budget early-break and the operand pregate skip only ``ctx.issue``
    calls that provably fail with zero side effects, so the issued set,
    queue state and every counter match the interpreted side exactly.
    """
    budget = "fp_b" if fp_side else "int_b"
    queue_arg = "_qi" if spec["distributed"] else "None"  # noqa: F841 (doc)
    fu_alloc = _indent(_fu_alloc_block(spec, "_qi"), 8)
    if fp_side:
        unpack = "__, __, __, __, __, lat, mux, pip, fus = _opinfo[inst.op]"
        gates = """\
        ready = True
        for fp_, ix in head.src_phys:
            if (sb_fp if fp_ else sb_int)[ix] > cycle:
                ready = False
                break
        if not ready:
            continue"""
        budget_spend = f"        {budget} -= 1"
    else:
        unpack = "is_fp_, is_mem, is_ld, is_st, is_br, lat, mux, pip, fus = _opinfo[inst.op]"
        gates = """\
        if is_mem and mem_b <= 0:
            continue
        srcs = head.src_phys
        if is_st and len(srcs) > 1:
            srcs = srcs[1:]
        ready = True
        for fp_, ix in srcs:
            if (sb_fp if fp_ else sb_int)[ix] > cycle:
                ready = False
                break
        if not ready:
            continue
        if is_ld and (
            not lsq.can_issue_load(inst.seq)
            or lsq.load_blocked_on_store_data(head, sb)
        ):
            continue"""
        budget_spend = f"""\
        {budget} -= 1
        if is_mem:
            mem_b -= 1"""
    completion = _indent(_completion_block(spec, fp_side), 8)
    return f"""\
heads = []
total_reads = 0
for _qi, _q in enumerate({queues_var}):
    if _q:
        heads.append((_q[0].age, _qi))
        total_reads += len(_q[0].src_phys)
if heads:
    if total_reads:
        _ev["regs_ready_read"] = _ev.get("regs_ready_read", 0) + total_reads
    heads.sort()
    for __, _qi in heads:
        if {budget} <= 0:
            break
        _q = {queues_var}[_qi]
        head = _q[0]
        inst = head.inst
        {unpack}
{gates}
{fu_alloc}
{budget_spend}
        head.issue_cycle = cycle
{completion}
        _q.popleft()
        _ev["fifo_read"] = _ev.get("fifo_read", 0) + 1
        issued_n += 1"""


def _conventional_side_block(spec: dict, side: int) -> str:
    """One side of the CAM/RAM baseline: ready-bound scan + selection."""
    queue_var = "cq_fp" if side else "cq_int"
    budget = "fp_b" if side else "int_b"
    fp_side = bool(side)
    fu_alloc = _indent(_fu_alloc_block(spec, "None"), 12)
    completion = _indent(_completion_block(spec, fp_side), 12)
    if fp_side:
        unpack = "__, __, __, __, __, lat, mux, pip, fus = _opinfo[inst.op]"
        gates = """\
            ready = True
            for fp_, ix in head.src_phys:
                if (sb_fp if fp_ else sb_int)[ix] > cycle:
                    ready = False
                    break
            if not ready:
                continue"""
        budget_spend = f"            {budget} -= 1"
    else:
        unpack = "is_fp_, is_mem, is_ld, is_st, is_br, lat, mux, pip, fus = _opinfo[inst.op]"
        gates = """\
            if is_mem and mem_b <= 0:
                continue
            srcs = head.src_phys
            if is_st and len(srcs) > 1:
                srcs = srcs[1:]
            ready = True
            for fp_, ix in srcs:
                if (sb_fp if fp_ else sb_int)[ix] > cycle:
                    ready = False
                    break
            if not ready:
                continue
            if is_ld and (
                not lsq.can_issue_load(inst.seq)
                or lsq.load_blocked_on_store_data(head, sb)
            ):
                continue"""
        budget_spend = f"""\
            {budget} -= 1
            if is_mem:
                mem_b -= 1"""
    return f"""\
queue = {queue_var}
if queue:
    _ev["iq_select_cycles"] = _ev.get("iq_select_cycles", 0) + 1
    scan = True
    if scheme._scan_shortcircuit:
        cached = cq_bound[{side}]
        version = sb._version
        rev = cq_rev[{side}]
        if cached is not None and cached[0] == version and cached[1] == rev:
            bound = cached[2]
        else:
            bound = _NEVER
            for uop in queue:
                srcs = uop.src_phys
                if _opinfo[uop.inst.op][3] and len(srcs) > 1:
                    srcs = srcs[1:]
                latest = 0
                for fp_, ix in srcs:
                    r = (sb_fp if fp_ else sb_int)[ix]
                    if r > latest:
                        latest = r
                if latest < bound:
                    bound = latest
                    if bound == 0:
                        break
            cq_bound[{side}] = (version, rev, bound)
        if bound > cycle:
            scan = False
    if scan:
        taken = []
        for _i, head in enumerate(queue):
            if {budget} <= 0:
                break
            inst = head.inst
            {unpack}
{gates}
{fu_alloc}
{budget_spend}
            head.issue_cycle = cycle
{completion}
            taken.append(_i)
            issued_n += 1
        if taken:
            for _i in reversed(taken):
                queue.pop(_i)
            cq_rev[{side}] += 1
            _ev["iq_buff_read"] = _ev.get("iq_buff_read", 0) + len(taken)"""


def _fifo_choose_code(queues_var: str, map_var: str, tail_var: str,
                      side_var: str, cap: int) -> str:
    """Inlined ``FifoSide._choose_queue``: sets ``qi`` (None on stall).

    Replicates the three placement heuristics including their event and
    stall-counter side effects (the rule counters live on the side object
    because the skip kernel's idle accounting reads them there).
    """
    return f"""\
qi = None
srcs_a = inst.srcs
first = None
if srcs_a:
    _ev["qrename_read"] = _ev.get("qrename_read", 0) + 1
    _k = (srcs_a[0].is_fp, srcs_a[0].index)
    _q = {map_var}.get(_k)
    if _q is not None and {tail_var}.get(_q) == _k:
        first = _q
if first is not None and len({queues_var}[first]) < {cap}:
    qi = first
elif first is not None and len(srcs_a) == 1:
    {side_var}.stalls_rule1_full += 1
else:
    second = None
    if len(srcs_a) > 1:
        _ev["qrename_read"] = _ev.get("qrename_read", 0) + 1
        _k = (srcs_a[1].is_fp, srcs_a[1].index)
        _q = {map_var}.get(_k)
        if _q is not None and {tail_var}.get(_q) == _k:
            second = _q
    if second is not None:
        if len({queues_var}[second]) < {cap}:
            qi = second
        else:
            {side_var}.stalls_rule2_full += 1
    else:
        for _qi2, _q2 in enumerate({queues_var}):
            if not _q2:
                qi = _qi2
                break
        else:
            {side_var}.stalls_no_empty += 1"""


def _fifo_place_code(queues_var: str, map_var: str, tail_var: str,
                     side_var: str, cap: int, after_append: str = "") -> str:
    """Inlined ``FifoSide.try_place`` + ``_append`` with stall break."""
    choose = _fifo_choose_code(queues_var, map_var, tail_var, side_var, cap)
    return f"""\
{choose}
if qi is None:
    {side_var}.dispatch_stalls += 1
    rob._next_age = age
    stalled = True
    blocked = inst
    break
{queues_var}[qi].append(uop)
uop.queue_index = qi
dest = inst.dest
if dest is not None:
    _ev["qrename_write"] = _ev.get("qrename_write", 0) + 1
    _kd = (dest.is_fp, dest.index)
    {map_var}[_kd] = qi
    {tail_var}[qi] = _kd
_ev["fifo_write"] = _ev.get("fifo_write", 0) + 1{after_append}"""


_INTERPRETED_PLACE = """\
if not scheme.try_dispatch(uop, cycle):
    rob._next_age = age
    stalled = True
    blocked = inst
    break"""


def _dispatch_place_block(spec: dict) -> str:
    """Scheme-specific placement inside the dispatch loop.

    The plain-FIFO paths (both IssueFIFO sides, the LatFIFO/MixBUFF
    integer sides) and the conventional append inline fully; the
    estimator-placed LatFIFO FP side and the MixBUFF chain placement
    stay interpreted via ``scheme.try_dispatch``.
    """
    kind = spec["scheme_kind"]
    if kind == SCHEME_CONVENTIONAL:
        int_cap = spec["rob_entries"] if spec["unbounded"] else spec["int_queue_entries"]
        fp_cap = spec["rob_entries"] if spec["unbounded"] else spec["fp_queue_entries"]
        return f"""\
if _opinfo[inst.op][0]:
    if len(cq_fp) >= {fp_cap}:
        rob._next_age = age
        stalled = True
        blocked = inst
        break
    cq_fp.append(uop)
    cq_rev[1] += 1
else:
    if len(cq_int) >= {int_cap}:
        rob._next_age = age
        stalled = True
        blocked = inst
        break
    cq_int.append(uop)
    cq_rev[0] += 1
_ev["iq_buff_write"] = _ev.get("iq_buff_write", 0) + 1"""
    int_place = _fifo_place_code(
        "int_queues_list", "imap", "itail", "iside", spec["int_queue_entries"],
        after_append=(
            "\nestimator.estimate(inst, cycle)" if kind == SCHEME_LATFIFO else ""
        ),
    )
    if kind == SCHEME_ISSUEFIFO:
        fp_place = _fifo_place_code(
            "fp_queues_list", "fmap", "ftail", "fside", spec["fp_queue_entries"]
        )
    else:  # latfifo estimator placement / mixbuff chains stay interpreted
        fp_place = _INTERPRETED_PLACE
    return (
        "if _opinfo[inst.op][0]:\n"
        + _indent(fp_place, 4)
        + "\nelse:\n"
        + _indent(int_place, 4)
    )


def _issue_stage(spec: dict) -> str:
    kind = spec["scheme_kind"]
    header = f"""\
issued_n = 0
int_b = {spec['int_issue_width']}
mem_b = {spec['dcache_ports']}
fp_b = {spec['fp_issue_width']}"""
    if kind == SCHEME_CONVENTIONAL:
        return "\n".join(
            [
                header,
                _conventional_side_block(spec, 0),
                _conventional_side_block(spec, 1),
            ]
        )
    if kind in (SCHEME_ISSUEFIFO, SCHEME_LATFIFO):
        return "\n".join(
            [
                header,
                _fifo_heads_block(spec, "int_queues_list", fp_side=False),
                _fifo_heads_block(spec, "fp_queues_list", fp_side=True),
            ]
        )
    if kind == SCHEME_MIXBUFF:
        mixbuff_fp = f"""\
_mb_occ = 0
for _q in mb_queues:
    _mb_occ += len(_q)
if _mb_occ:
    # The MixBUFF chain selector stays interpreted (documented partial
    # specialization); it runs against a real IssueContext, sharing
    # this cycle's scoreboard and FU state exactly like the base scheme.
    ctx = IssueContext(cycle, config, sb, fu_pool, lsq, processor._schedule_completion)
    ctx.int_budget = int_b
    ctx.memory_budget = mem_b
    issued_n += len(scheme.fp_side.issue_one_per_queue(ctx, {spec['distributed']}))"""
        return "\n".join(
            [
                header,
                _fifo_heads_block(spec, "int_queues_list", fp_side=False),
                mixbuff_fp,
            ]
        )
    raise ValueError(f"no specialized kernel template for scheme {kind!r}")


def _broadcast_stage(spec: dict) -> str:
    if spec["scheme_kind"] == SCHEME_CONVENTIONAL:
        return """\
if b:
    _ev["iq_wakeup_broadcasts"] = _ev.get("iq_wakeup_broadcasts", 0) + b
    unready = 0
    for queue in (cq_int, cq_fp):
        for uop in queue:
            for fp_, ix in uop.src_phys:
                if (sb_fp if fp_ else sb_int)[ix] > cycle:
                    unready += 1
    _cmp = b * unready
    if _cmp:
        _ev["iq_wakeup_comparisons"] = _ev.get("iq_wakeup_comparisons", 0) + _cmp"""
    return """\
if b:
    _ev["regs_ready_write"] = _ev.get("regs_ready_write", 0) + b"""


def _scheme_bindings(spec: dict) -> str:
    kind = spec["scheme_kind"]
    if kind == SCHEME_CONVENTIONAL:
        return """\
cq_int = scheme._int_queue
cq_fp = scheme._fp_queue
cq_rev = scheme._queue_rev
cq_bound = scheme._ready_bound"""
    fifo_int = """\
iside = scheme.int_side
int_queues_list = iside.queues
imap = iside.table._map
itail = iside.table._tail_reg"""
    if kind == SCHEME_MIXBUFF:
        return fifo_int + "\nmb_queues = scheme.fp_side.queues"
    if kind == SCHEME_LATFIFO:
        return (
            fifo_int
            + "\nfp_queues_list = scheme.fp_side.queues"
            + "\nestimator = scheme.estimator"
        )
    return (
        fifo_int
        + """
fside = scheme.fp_side
fp_queues_list = fside.queues
fmap = fside.table._map
ftail = fside.table._tail_reg"""
    )


def _occupancy_expr(spec: dict) -> str:
    kind = spec["scheme_kind"]
    if kind == SCHEME_CONVENTIONAL:
        return "len(cq_int) + len(cq_fp)"
    if kind == SCHEME_MIXBUFF:
        return "sum(map(len, int_queues_list)) + sum(map(len, mb_queues))"
    return "sum(map(len, int_queues_list)) + sum(map(len, fp_queues_list))"


def _fu_bindings(spec: dict) -> str:
    if spec["distributed"]:
        return """\
_fu_int_alu = fu_pool._int_alu
_fu_int_muldiv = fu_pool._int_muldiv
_fu_fp_alu = fu_pool._fp_alu
_fu_fp_muldiv = fu_pool._fp_muldiv"""
    return """\
_units = (
    fu_pool.units_of(FuType.INT_ALU),
    fu_pool.units_of(FuType.INT_MULDIV),
    fu_pool.units_of(FuType.FP_ALU),
    fu_pool.units_of(FuType.FP_MULDIV),
)"""


def generate_source(spec: dict) -> str:
    """Emit the specialized kernel module source for ``spec``."""
    global CODEGEN_RUNS
    CODEGEN_RUNS += 1
    decode_room = 2 * spec["decode_width"]
    body = f'''\
"""Generated specialized kernel — do not edit.

Generator: repro.backends.codegen {generator_digest()[:12]}
Spec digest: {spec_digest(spec)}
Spec: {json.dumps(spec, sort_keys=True)}
"""

from repro.common import faults
from repro.core.engine import _no_progress
from repro.core.uop import InFlight
from repro.isa.opcodes import FuType, OpClass
from repro.issue.base import IssueContext, IssueScheme

_NEVER = 1 << 60

{_opinfo_literal(spec)}


def make_kernel(processor):
    config = processor.config
    scheme = processor.scheme
    events = processor.events
    _ev = events._counts
    sb = processor.scoreboard
    sb_int = sb._int
    sb_fp = sb._fp
    fetch = processor.fetch
    renamer = processor.renamer
    rob = processor.rob
    rob_entries = rob._entries
    lsq = processor.lsq
    hierarchy = processor.hierarchy
    stats = processor.stats
    bc_wheel = processor._broadcasts
    br_res = processor._branch_resolutions
    decode_queue = processor._decode_queue
    fu_pool = processor.fu_pool
{_indent(_fu_bindings(spec), 4)}
{_indent(_scheme_bindings(spec), 4)}
    _opinfo = _OPINFO
    _cycle_end = (
        None
        if type(scheme).on_cycle_end is IssueScheme.on_cycle_end
        else scheme.on_cycle_end
    )

    def _step(cycle):
        # stage 1: branch resolutions due this cycle
        resolved_list = br_res.pop(cycle, None)
        if resolved_list is None:
            resolved = 0
        else:
            resolved = len(resolved_list)
            for uop in resolved_list:
                seq = uop.inst.seq
                was_blocking = fetch.blocked_on_branch == seq
                fetch.resolve_branch(seq, cycle)
                if was_blocking:
                    scheme.on_mispredict_resolved()
        # stage 2: in-order commit (inlined rob.commit_ready + release)
        retired = 0
        while rob_entries and retired < {spec['commit_width']}:
            head = rob_entries[0]
            cc = head.complete_cycle
            if cc is None or cc > cycle:
                break
            rob_entries.popleft()
            if head.prev_phys is not None:
                renamer.release(head.prev_phys)
            if _opinfo[head.inst.op][3]:
                lsq.retire_store(head)
                hierarchy.data_access_latency(head.inst.mem_addr, is_store=True)
            retired += 1
        rob.committed += retired
        # stage 3: result broadcasts (wakeup energy)
        b = bc_wheel.pop(cycle, 0)
{_indent(_broadcast_stage(spec), 8)}
        # stage 4: select and issue (inlined IssueContext)
{_indent(_issue_stage(spec), 8)}
        if issued_n:
            _ev["instructions_issued"] = _ev.get("instructions_issued", 0) + issued_n
        # stage 5: in-order dispatch
        dispatched = 0
        stalled = False
        blocked = None
        while (
            decode_queue
            and decode_queue[0][1] <= cycle
            and dispatched < {spec['decode_width']}
        ):
            inst = decode_queue[0][0]
            if len(rob_entries) >= {spec['rob_entries']} or not renamer.can_rename(inst.dest):
                stalled = True
                break
            age = rob._next_age
            rob._next_age = age + 1
            uop = InFlight(inst, [], None, None, len(rob_entries), age, cycle)
{_indent(_dispatch_place_block(spec), 12)}
            decode_queue.popleft()
            renamed = renamer.rename(inst.srcs, inst.dest)
            uop.src_phys = renamed["src_phys"]
            dp = renamed["dest_phys"]
            uop.dest_phys = dp
            uop.prev_phys = renamed["prev_phys"]
            if dp is not None:
                fp_, ix = dp
                (sb_fp if fp_ else sb_int)[ix] = _NEVER
                sb._version += 1
            rob_entries.append(uop)
            if _opinfo[inst.op][3]:
                lsq.add_store(uop)
            dispatched += 1
        processor._dispatch_blocked_inst = blocked
        if stalled:
            stats.dispatch_stall_cycles += 1
        # stage 6: decode
        room = {decode_room} - len(decode_queue)
        if room > 0:
            moved = fetch.pop_instructions(
                room if room < {spec['decode_width']} else {spec['decode_width']}
            )
            decoded = len(moved)
            due = cycle + 1
            for inst in moved:
                decode_queue.append((inst, due))
        else:
            decoded = 0
        # stage 7: fetch
        token = fetch.state_token()
        fetched = fetch.fetch_cycle(cycle)
        if _cycle_end is not None:
            _cycle_end(cycle)
        processor._occupancy_accum += {_occupancy_expr(spec)}
        activity = bool(
            resolved
            or retired
            or b
            or issued_n
            or dispatched
            or decoded
            or fetched
            or fetch.state_token() != token
        )
        return activity, retired

    def run(total, max_cycles, warmup_instructions):
        # Verbatim clone of repro.core.engine.run_skipping over _step.
        telemetry = processor.kernel_telemetry
        committed = 0
        cycle = 0
        snapshot = None
        while committed < total:
            if cycle > max_cycles:
                raise _no_progress(processor, cycle, committed, total)
            active, retired = _step(cycle)
            committed += retired
            cycle += 1
            telemetry.executed_cycles += 1
            if snapshot is None and committed >= warmup_instructions:
                snapshot = processor._snapshot(cycle, committed)
            if active or committed >= total:
                continue
            target = processor.next_event_cycle(cycle, defer_inert_broadcasts=True)
            if target is None:
                raise _no_progress(processor, cycle, committed, total)
            if target <= cycle + 1:
                continue
            if cycle > max_cycles:
                raise _no_progress(processor, cycle, committed, total)
            before = processor.idle_accounting_snapshot()
            active, retired = _step(cycle)
            committed += retired
            cycle += 1
            telemetry.executed_cycles += 1
            if snapshot is None and committed >= warmup_instructions:
                snapshot = processor._snapshot(cycle, committed)
            if active:
                continue
            span = min(target, max_cycles + 1) - cycle
            if span > 0:
                replayed = span
                if span > 8 and faults.is_active(faults.SKIP_IDLE_UNDERCOUNT):
                    replayed = span - 1
                processor.advance_idle(before, replayed)
                telemetry.drained_broadcasts += processor.drain_broadcasts(
                    cycle, cycle + span
                )
                cycle += span
                telemetry.skipped_cycles += span
                telemetry.skip_spans += 1
        processor._finalize(cycle, committed, snapshot)
        return processor.stats

    return run
'''
    return body
