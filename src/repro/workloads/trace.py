"""Trace container: a validated dynamic instruction stream."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import TraceError
from repro.isa.instructions import Instruction, validate_instruction
from repro.isa.opcodes import OpClass

__all__ = ["Trace"]


@dataclass
class Trace:
    """A dynamic instruction stream plus provenance metadata.

    Sequence numbers must be dense and start at zero — the pipeline uses
    them as indices into per-instruction side tables.
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    profile_name: Optional[str] = None
    seed: Optional[int] = None
    #: Register-count pairs this stream has already validated against.
    #: Instructions are frozen, so a pass is a pass forever; every
    #: ``Processor.__init__`` re-validates its trace, and a campaign
    #: constructs many processors over one shared trace.
    _validated: Set[Tuple[int, int]] = field(
        default_factory=set, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    def validate(self, num_int_regs: int = 32, num_fp_regs: int = 32) -> None:
        """Check the whole stream; raises :class:`TraceError` on problems.

        Memoized per register-count pair: instructions are immutable, so
        once the stream has passed for given counts it passes forever and
        repeat validations (one per processor construction) are free.
        """
        if (num_int_regs, num_fp_regs) in self._validated:
            return
        for expect_seq, inst in enumerate(self.instructions):
            if inst.seq != expect_seq:
                raise TraceError(
                    f"{self.name}: sequence numbers not dense at #{expect_seq} "
                    f"(found {inst.seq})"
                )
            validate_instruction(inst, num_int_regs, num_fp_regs)
        self._validated.add((num_int_regs, num_fp_regs))

    def op_histogram(self) -> dict:
        """Counts of each op class; useful for checking generated mixes."""
        histogram: dict = {}
        for inst in self.instructions:
            histogram[inst.op] = histogram.get(inst.op, 0) + 1
        return histogram

    def fraction(self, ops: Sequence[OpClass]) -> float:
        """Fraction of the stream whose op class is in ``ops``."""
        if not self.instructions:
            return 0.0
        wanted = set(ops)
        hits = sum(1 for inst in self.instructions if inst.op in wanted)
        return hits / len(self.instructions)
