"""Named benchmark profiles standing in for SPEC2000.

The paper evaluates on SPEC2000 (12 integer + 14 FP programs). The suite
itself is proprietary, so each program is replaced by a synthetic profile
that reproduces its *relevant* characteristics: dependence-graph width,
operation mix, branch behaviour and memory behaviour. The knob values are
drawn from the broadly known characterization of these programs (e.g.
*mcf* is memory bound with a huge random working set; *swim*/*mgrid* are
wide regular streaming FP loops; *crafty* is branchy with a small working
set). Absolute IPC will not match the paper's Alpha testbed, but the
*relative* behaviour of the issue schemes — which is what every figure
reports — is driven by exactly these knobs.

Calibration notes (see EXPERIMENTS.md): integer profiles use narrow
dependence graphs (5–8 chains) with short expression segments, so they
fit in 8–12 FIFO queues with modest loss; FP profiles use wide graphs
(10–22 chains) with long-latency operations and enough recurrent L1
misses that dependence-based FIFO placement runs out of queues, which is
the effect the paper's MixBUFF is designed to fix.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import UnknownBenchmarkError
from repro.workloads.profiles import (
    BranchBehavior,
    MemoryBehavior,
    OperationMix,
    WorkloadProfile,
)

__all__ = [
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "STRESS_BENCHMARKS",
    "specint2000",
    "specfp2000",
    "stress_suite",
    "get_profile",
    "all_profiles",
]

KB = 1024


def _int_mix(load=0.22, store=0.10, branch=0.14, mul=0.02, div=0.002, fp=0.0, fp_mul=0.0):
    """Typical integer-program mix; remainder is single-cycle ALU work."""
    alu = 1.0 - load - store - branch - mul - div - fp - fp_mul
    return OperationMix(
        int_alu=alu,
        int_mul=mul,
        int_div=div,
        fp_alu=fp,
        fp_mul=fp_mul,
        load=load,
        store=store,
        branch=branch,
    )


def _fp_mix(load=0.26, store=0.08, branch=0.04, fp_alu=0.28, fp_mul=0.22, fp_div=0.01, int_mul=0.0):
    """Typical FP-program mix; remainder is integer overhead (addressing)."""
    int_alu = 1.0 - load - store - branch - fp_alu - fp_mul - fp_div - int_mul
    return OperationMix(
        int_alu=int_alu,
        int_mul=int_mul,
        fp_alu=fp_alu,
        fp_mul=fp_mul,
        fp_div=fp_div,
        load=load,
        store=store,
        branch=branch,
    )


def _int_memory(ws_kb: int, random_fraction: float, random_region_kb: int = 64):
    return MemoryBehavior(
        working_set_bytes=ws_kb * KB,
        random_fraction=random_fraction,
        random_region_bytes=random_region_kb * KB,
    )


def _fp_memory(ws_kb: int, random_fraction: float, random_region_kb: int = 128, stride: int = 8):
    return MemoryBehavior(
        working_set_bytes=ws_kb * KB,
        random_fraction=random_fraction,
        stride_bytes=stride,
        random_region_bytes=random_region_kb * KB,
    )


# ---------------------------------------------------------------------------
# SPECint2000 stand-ins: narrow dependence graphs, short-latency operations.
# ---------------------------------------------------------------------------

_INT_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile(
        name="bzip2",
        suite="int",
        num_chains=6,
        chain_segment_ops=5,
        mix=_int_mix(load=0.24, store=0.12, branch=0.12),
        memory=_int_memory(96, 0.10),
        branches=BranchBehavior(hard_branch_fraction=0.08, bias=0.94),
        loop_body_size=96,
        description="compression; moderate working set, data-dependent branches",
    ),
    WorkloadProfile(
        name="crafty",
        suite="int",
        num_chains=7,
        chain_segment_ops=5,
        mix=_int_mix(load=0.26, store=0.07, branch=0.17),
        memory=_int_memory(24, 0.05, 24),
        branches=BranchBehavior(hard_branch_fraction=0.08, bias=0.95),
        loop_body_size=160,
        code_footprint_loops=3,
        description="chess; very branchy, cache-resident",
    ),
    WorkloadProfile(
        name="eon",
        suite="int",
        num_chains=6,
        chain_segment_ops=5,
        mix=_int_mix(load=0.22, store=0.10, branch=0.11, fp=0.10, fp_mul=0.06),
        memory=_int_memory(16, 0.03, 16),
        branches=BranchBehavior(hard_branch_fraction=0.05, bias=0.96),
        loop_body_size=128,
        description="ray tracing; the one SPECint program with significant FP work",
    ),
    WorkloadProfile(
        name="gap",
        suite="int",
        num_chains=5,
        chain_segment_ops=5,
        mix=_int_mix(load=0.24, store=0.09, branch=0.13, mul=0.04),
        memory=_int_memory(128, 0.10),
        branches=BranchBehavior(hard_branch_fraction=0.07, bias=0.94),
        loop_body_size=112,
        description="group theory; pointer-heavy interpreter",
    ),
    WorkloadProfile(
        name="gcc",
        suite="int",
        num_chains=6,
        chain_segment_ops=4,
        mix=_int_mix(load=0.25, store=0.11, branch=0.16),
        memory=_int_memory(256, 0.12, 96),
        branches=BranchBehavior(hard_branch_fraction=0.11, bias=0.93),
        loop_body_size=192,
        code_footprint_loops=4,
        description="compiler; large code footprint, branchy, irregular",
    ),
    WorkloadProfile(
        name="gzip",
        suite="int",
        num_chains=6,
        chain_segment_ops=5,
        mix=_int_mix(load=0.22, store=0.10, branch=0.13),
        memory=_int_memory(48, 0.06, 48),
        branches=BranchBehavior(hard_branch_fraction=0.08, bias=0.94),
        loop_body_size=80,
        description="compression; small hot loop",
    ),
    WorkloadProfile(
        name="mcf",
        suite="int",
        num_chains=4,
        chain_segment_ops=6,
        mix=_int_mix(load=0.30, store=0.08, branch=0.15),
        memory=_int_memory(2048, 0.55, 1024),
        branches=BranchBehavior(hard_branch_fraction=0.14, bias=0.91),
        loop_body_size=64,
        load_feeds_chain_fraction=0.85,
        description="network simplex; pointer chasing, memory bound",
    ),
    WorkloadProfile(
        name="parser",
        suite="int",
        num_chains=5,
        chain_segment_ops=5,
        mix=_int_mix(load=0.25, store=0.09, branch=0.16),
        memory=_int_memory(96, 0.15),
        branches=BranchBehavior(hard_branch_fraction=0.12, bias=0.92),
        loop_body_size=96,
        description="NL parser; irregular control and data",
    ),
    WorkloadProfile(
        name="perlbmk",
        suite="int",
        num_chains=6,
        chain_segment_ops=5,
        mix=_int_mix(load=0.24, store=0.11, branch=0.15),
        memory=_int_memory(64, 0.08),
        branches=BranchBehavior(hard_branch_fraction=0.07, bias=0.95),
        loop_body_size=144,
        code_footprint_loops=3,
        description="perl interpreter; big code footprint",
    ),
    WorkloadProfile(
        name="twolf",
        suite="int",
        num_chains=7,
        chain_segment_ops=5,
        mix=_int_mix(load=0.24, store=0.08, branch=0.13, mul=0.03),
        memory=_int_memory(192, 0.20, 96),
        branches=BranchBehavior(hard_branch_fraction=0.10, bias=0.93),
        loop_body_size=112,
        description="place and route; scattered accesses",
    ),
    WorkloadProfile(
        name="vortex",
        suite="int",
        num_chains=6,
        chain_segment_ops=5,
        mix=_int_mix(load=0.27, store=0.13, branch=0.14),
        memory=_int_memory(128, 0.10),
        branches=BranchBehavior(hard_branch_fraction=0.05, bias=0.96),
        loop_body_size=176,
        code_footprint_loops=3,
        description="OO database; store heavy, predictable branches",
    ),
    WorkloadProfile(
        name="vpr",
        suite="int",
        num_chains=6,
        chain_segment_ops=5,
        mix=_int_mix(load=0.23, store=0.08, branch=0.13, fp=0.04),
        memory=_int_memory(128, 0.15),
        branches=BranchBehavior(hard_branch_fraction=0.09, bias=0.93),
        loop_body_size=104,
        description="FPGA place and route; some FP cost functions",
    ),
]

# ---------------------------------------------------------------------------
# SPECfp2000 stand-ins: wide dependence graphs, long-latency operations.
# ---------------------------------------------------------------------------

_FP_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile(
        name="ammp",
        suite="fp",
        num_chains=14,
        chain_segment_ops=9,
        mix=_fp_mix(load=0.28, fp_alu=0.26, fp_mul=0.20, fp_div=0.015),
        memory=_fp_memory(384, 0.40, 160),
        branches=BranchBehavior(hard_branch_fraction=0.06, bias=0.95),
        loop_body_size=224,
        description="molecular dynamics; memory bound, divides",
    ),
    WorkloadProfile(
        name="applu",
        suite="fp",
        num_chains=18,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.26, fp_alu=0.30, fp_mul=0.24, fp_div=0.005),
        memory=_fp_memory(448, 0.30, 128),
        branches=BranchBehavior(hard_branch_fraction=0.03, bias=0.98),
        loop_body_size=288,
        description="PDE solver; wide regular loops, streaming",
    ),
    WorkloadProfile(
        name="apsi",
        suite="fp",
        num_chains=16,
        chain_segment_ops=9,
        mix=_fp_mix(load=0.25, fp_alu=0.28, fp_mul=0.22, fp_div=0.01),
        memory=_fp_memory(320, 0.35, 128),
        branches=BranchBehavior(hard_branch_fraction=0.04, bias=0.97),
        loop_body_size=256,
        description="meteorology; mixed regular/irregular",
    ),
    WorkloadProfile(
        name="art",
        suite="fp",
        num_chains=12,
        chain_segment_ops=8,
        mix=_fp_mix(load=0.32, fp_alu=0.30, fp_mul=0.18, branch=0.05),
        memory=_fp_memory(1536, 0.50, 768),
        branches=BranchBehavior(hard_branch_fraction=0.08, bias=0.94),
        loop_body_size=160,
        load_feeds_chain_fraction=0.7,
        description="neural network; severely memory bound",
    ),
    WorkloadProfile(
        name="equake",
        suite="fp",
        num_chains=13,
        chain_segment_ops=9,
        mix=_fp_mix(load=0.30, fp_alu=0.27, fp_mul=0.20),
        memory=_fp_memory(512, 0.40, 192),
        branches=BranchBehavior(hard_branch_fraction=0.05, bias=0.96),
        loop_body_size=192,
        description="earthquake simulation; sparse matrix-vector",
    ),
    WorkloadProfile(
        name="facerec",
        suite="fp",
        num_chains=15,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.24, fp_alu=0.29, fp_mul=0.24),
        memory=_fp_memory(256, 0.30, 128),
        branches=BranchBehavior(hard_branch_fraction=0.04, bias=0.97),
        loop_body_size=224,
        description="face recognition; FFT-like kernels",
    ),
    WorkloadProfile(
        name="fma3d",
        suite="fp",
        num_chains=16,
        chain_segment_ops=9,
        mix=_fp_mix(load=0.27, fp_alu=0.27, fp_mul=0.21, fp_div=0.012),
        memory=_fp_memory(384, 0.35, 160),
        branches=BranchBehavior(hard_branch_fraction=0.05, bias=0.95),
        loop_body_size=272,
        code_footprint_loops=2,
        description="crash simulation; large code, wide loops",
    ),
    WorkloadProfile(
        name="galgel",
        suite="fp",
        num_chains=20,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.24, fp_alu=0.31, fp_mul=0.26, branch=0.03),
        memory=_fp_memory(256, 0.35, 128),
        branches=BranchBehavior(hard_branch_fraction=0.03, bias=0.98),
        loop_body_size=256,
        description="fluid dynamics; very wide regular DDG",
    ),
    WorkloadProfile(
        name="lucas",
        suite="fp",
        num_chains=22,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.23, fp_alu=0.32, fp_mul=0.27, branch=0.02),
        memory=_fp_memory(448, 0.25, 128, stride=16),
        branches=BranchBehavior(hard_branch_fraction=0.02, bias=0.99),
        loop_body_size=288,
        description="primality testing; FFT, widest DDG",
    ),
    WorkloadProfile(
        name="mesa",
        suite="fp",
        num_chains=10,
        chain_segment_ops=8,
        mix=_fp_mix(load=0.25, fp_alu=0.25, fp_mul=0.20, branch=0.08, fp_div=0.008),
        memory=_fp_memory(160, 0.25, 96),
        branches=BranchBehavior(hard_branch_fraction=0.06, bias=0.95),
        loop_body_size=176,
        description="3-D graphics; branchier than most FP codes",
    ),
    WorkloadProfile(
        name="mgrid",
        suite="fp",
        num_chains=18,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.30, store=0.06, fp_alu=0.30, fp_mul=0.22, branch=0.02),
        memory=_fp_memory(512, 0.30, 160),
        branches=BranchBehavior(hard_branch_fraction=0.02, bias=0.99),
        loop_body_size=256,
        description="multigrid solver; streaming stencils",
    ),
    WorkloadProfile(
        name="sixtrack",
        suite="fp",
        num_chains=17,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.22, fp_alu=0.30, fp_mul=0.26, fp_div=0.01),
        memory=_fp_memory(160, 0.20, 96),
        branches=BranchBehavior(hard_branch_fraction=0.03, bias=0.97),
        loop_body_size=240,
        description="particle tracking; compute bound, high ILP",
    ),
    WorkloadProfile(
        name="swim",
        suite="fp",
        num_chains=20,
        chain_segment_ops=10,
        mix=_fp_mix(load=0.30, store=0.09, fp_alu=0.29, fp_mul=0.21, branch=0.02),
        memory=_fp_memory(1024, 0.45, 192),
        branches=BranchBehavior(hard_branch_fraction=0.02, bias=0.99),
        loop_body_size=272,
        description="shallow water; wide streaming stencils",
    ),
    WorkloadProfile(
        name="wupwise",
        suite="fp",
        num_chains=14,
        chain_segment_ops=9,
        mix=_fp_mix(load=0.25, fp_alu=0.28, fp_mul=0.25),
        memory=_fp_memory(320, 0.30, 128),
        branches=BranchBehavior(hard_branch_fraction=0.03, bias=0.97),
        loop_body_size=224,
        description="lattice QCD; matrix kernels",
    ),
]

# ---------------------------------------------------------------------------
# Stress scenarios: behaviours the paper's SPEC2000 stand-ins do not
# cover, used by the exploration subsystem (repro.explore) to probe the
# corners of the scheme/geometry trade-off space.
# ---------------------------------------------------------------------------

_STRESS_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile(
        name="ptrchase",
        suite="int",
        num_chains=2,
        chain_segment_ops=12,
        mix=_int_mix(load=0.34, store=0.06, branch=0.12),
        memory=_int_memory(4096, 0.75, 2048),
        branches=BranchBehavior(hard_branch_fraction=0.18, bias=0.90),
        loop_body_size=48,
        load_feeds_chain_fraction=0.95,
        loop_carried_fraction=0.9,
        description="stress: serial pointer chasing — two long loop-carried "
        "chains, almost every load feeds a chain, multi-MB random region; "
        "worst case for latency estimates and a best case for cycle skipping",
    ),
    WorkloadProfile(
        name="branchstorm",
        suite="int",
        num_chains=6,
        chain_segment_ops=3,
        mix=_int_mix(load=0.18, store=0.06, branch=0.30),
        memory=_int_memory(32, 0.05, 32),
        branches=BranchBehavior(
            hard_branch_fraction=0.45, periodic_fraction=0.2, bias=0.85
        ),
        loop_body_size=64,
        code_footprint_loops=4,
        description="stress: branch-hostile — nearly one branch in three, "
        "half of them data-dependent; exercises mapping-table clears and "
        "front-end redirects far beyond any SPECint stand-in",
    ),
    WorkloadProfile(
        name="streampump",
        suite="fp",
        num_chains=24,
        chain_segment_ops=4,
        mix=_fp_mix(load=0.34, store=0.12, branch=0.02, fp_alu=0.30, fp_mul=0.16),
        memory=_fp_memory(2048, 0.05, 128, stride=32),
        branches=BranchBehavior(hard_branch_fraction=0.01, bias=0.99),
        loop_body_size=256,
        loop_carried_fraction=0.2,
        description="stress: pure streaming — widest DDG in the repo with "
        "very short chain segments, so fresh chains are born faster than "
        "any FIFO count the paper studies can absorb",
    ),
    WorkloadProfile(
        name="phasemix",
        suite="fp",
        num_chains=12,
        chain_segment_ops=6,
        mix=_fp_mix(
            load=0.28, store=0.08, branch=0.10, fp_alu=0.20, fp_mul=0.14, fp_div=0.01
        ),
        memory=_fp_memory(1024, 0.35, 512),
        branches=BranchBehavior(
            hard_branch_fraction=0.12, periodic_fraction=0.4, bias=0.90
        ),
        loop_body_size=160,
        code_footprint_loops=6,
        description="stress: phase-mixed — alternating loop bodies across a "
        "large code footprint blend compute-bound and memory-bound phases "
        "with branchy FP control, the regime where no single geometry wins",
    ),
]

INT_BENCHMARKS: List[str] = [p.name for p in _INT_PROFILES]
FP_BENCHMARKS: List[str] = [p.name for p in _FP_PROFILES]
STRESS_BENCHMARKS: List[str] = [p.name for p in _STRESS_PROFILES]

_BY_NAME: Dict[str, WorkloadProfile] = {
    p.name: p for p in _INT_PROFILES + _FP_PROFILES + _STRESS_PROFILES
}


def specint2000() -> List[WorkloadProfile]:
    """The 12 SPECint2000 stand-in profiles, in the paper's order."""
    return list(_INT_PROFILES)


def specfp2000() -> List[WorkloadProfile]:
    """The 14 SPECfp2000 stand-in profiles, in the paper's order."""
    return list(_FP_PROFILES)


def stress_suite() -> List[WorkloadProfile]:
    """The exploration stress scenarios (not part of the paper's suites)."""
    return list(_STRESS_PROFILES)


def all_profiles() -> List[WorkloadProfile]:
    """Every profile: the 26 SPEC2000 stand-ins, then the stress suite."""
    return _INT_PROFILES + _FP_PROFILES + _STRESS_PROFILES


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name.

    Raises :class:`UnknownBenchmarkError` with the available names if the
    benchmark does not exist.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise UnknownBenchmarkError(f"unknown benchmark {name!r}; known: {known}") from None
