"""Synthetic trace generation.

The generator builds a *static program* from a profile — one or more loop
bodies with a fixed dependence structure — and then unrolls it into a
dynamic trace. Generating a static program first (rather than sampling
each dynamic instruction independently) gives the trace the properties
that matter to the paper's schemes:

* a repeating PC stream, so the I-cache and branch predictor behave like
  they would on a real loop nest;
* *persistent* dependence chains: chain *i*'s instruction in iteration
  *k+1* depends on chain *i*'s last value from iteration *k*, so the DDG
  width is exactly ``profile.num_chains`` in steady state;
* static branches with stable per-branch behaviour, so predictability is
  a program property rather than noise.

Register convention (architectural):

* ``r0`` — loop counter (rewritten every iteration),
* ``r4...`` — integer chain registers, then induction/scratch registers,
* ``f0...`` — FP chain registers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.isa.instructions import Instruction, RegisterRef
from repro.isa.opcodes import OpClass
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace

__all__ = ["generate_trace", "StaticInstruction", "StaticProgram", "build_static_program"]

_LOOP_COUNTER = RegisterRef(False, 0)
_FIRST_INT_CHAIN_REG = 4
_INSTRUCTION_BYTES = 4


@dataclass
class StaticInstruction:
    """One slot of a static loop body.

    ``chain`` is the dependence chain this instruction belongs to (or
    ``None`` for overhead instructions). Memory slots carry an address
    pattern (a cyclic stream or random accesses within the working set).
    Branch slots carry a behaviour kind: ``periodic`` (deterministic
    taken pattern of the given period), ``biased`` (independent draws at
    ``taken_probability``), ``hard`` (independent draws at 0.5) or
    ``loopback`` (taken except every ``period``-th execution).
    """

    op: OpClass
    dest: Optional[RegisterRef]
    srcs: Tuple[RegisterRef, ...]
    chain: Optional[int] = None
    addr_offset: int = 0
    addr_stride: int = 0
    addr_random: bool = False
    branch_kind: Optional[str] = None
    taken_probability: float = 0.5
    period: int = 0
    is_loop_back: bool = False


@dataclass
class StaticProgram:
    """A set of loop bodies the dynamic trace cycles through."""

    bodies: List[List[StaticInstruction]]
    code_base: int = 0x40_0000
    data_base: int = 0x1000_0000

    def body_pc(self, body_index: int, slot: int) -> int:
        """PC of a given slot; bodies are laid out back to back."""
        offset = sum(len(b) for b in self.bodies[:body_index]) + slot
        return self.code_base + offset * _INSTRUCTION_BYTES


def _computation_ops(profile: WorkloadProfile, rng: random.Random, count: int) -> List[OpClass]:
    """Draw ``count`` computation op classes according to the mix."""
    mix = profile.mix
    classes = [
        (OpClass.INT_ALU, mix.int_alu),
        (OpClass.INT_MUL, mix.int_mul),
        (OpClass.INT_DIV, mix.int_div),
        (OpClass.FP_ALU, mix.fp_alu),
        (OpClass.FP_MUL, mix.fp_mul),
        (OpClass.FP_DIV, mix.fp_div),
    ]
    ops = [op for op, weight in classes if weight > 0]
    weights = [weight for __, weight in classes if weight > 0]
    return rng.choices(ops, weights=weights, k=count)


def _chain_register(profile: WorkloadProfile, chain: int) -> RegisterRef:
    """Architectural register that carries chain ``chain``'s live value.

    FP-suite chains live in FP registers; integer-suite chains in integer
    registers starting above the reserved overhead registers.
    """
    if profile.suite == "fp":
        return RegisterRef(True, chain)
    return RegisterRef(False, _FIRST_INT_CHAIN_REG + chain)


def _int_scratch_register(profile: WorkloadProfile, index: int, num_int_regs: int) -> RegisterRef:
    """Integer registers used by FP profiles for overhead integer work."""
    base = _FIRST_INT_CHAIN_REG
    if profile.suite == "int":
        base = _FIRST_INT_CHAIN_REG + profile.num_chains
    span = max(1, num_int_regs - base)
    return RegisterRef(False, base + index % span)


def build_static_program(
    profile: WorkloadProfile,
    seed: int,
    num_int_regs: int = 32,
    num_fp_regs: int = 32,
) -> StaticProgram:
    """Build the static loop bodies for a profile.

    Deterministic in (profile, seed). Raises
    :class:`~repro.common.errors.ConfigurationError` if the profile needs
    more chain registers than the architecture has.
    """
    profile.validate()
    if profile.suite == "fp" and profile.num_chains > num_fp_regs:
        raise ConfigurationError(
            f"{profile.name}: {profile.num_chains} chains exceed {num_fp_regs} FP registers"
        )
    if profile.suite == "int" and _FIRST_INT_CHAIN_REG + profile.num_chains > num_int_regs:
        raise ConfigurationError(
            f"{profile.name}: {profile.num_chains} chains exceed the integer registers"
        )
    rng = make_rng(seed, f"static-program:{profile.name}")
    bodies = [
        _build_body(profile, rng, body_index, num_int_regs)
        for body_index in range(profile.code_footprint_loops)
    ]
    return StaticProgram(bodies=bodies)


def _build_body(
    profile: WorkloadProfile,
    rng: random.Random,
    body_index: int,
    num_int_regs: int,
) -> List[StaticInstruction]:
    """Build one loop body of ``profile.loop_body_size`` slots."""
    mix = profile.mix
    n = profile.loop_body_size

    # Slot budget: the last slot is always the loop-back branch.
    n_branches = max(1, round(mix.branch * n))
    n_loads = round(mix.load * n)
    n_stores = round(mix.store * n)
    n_compute = n - n_branches - n_loads - n_stores
    if n_compute < profile.num_chains:
        raise ConfigurationError(
            f"{profile.name}: loop body too small for {profile.num_chains} chains"
        )

    # Interleave categories deterministically: spread branches evenly,
    # scatter memory ops, fill the rest with computation.
    kinds: List[str] = ["compute"] * n
    if n_branches > 1:
        spacing = n // n_branches
        for b in range(n_branches - 1):
            kinds[min(n - 2, (b + 1) * spacing)] = "branch"
    kinds[n - 1] = "loopback"
    free = [i for i, k in enumerate(kinds) if k == "compute"]
    rng.shuffle(free)
    for i in free[:n_loads]:
        kinds[i] = "load"
    for i in free[n_loads : n_loads + n_stores]:
        kinds[i] = "store"

    compute_ops = _computation_ops(profile, rng, sum(1 for k in kinds if k == "compute"))
    body: List[StaticInstruction] = []
    chain_cursor = 0
    compute_cursor = 0
    scratch_cursor = 0
    load_cursor = 0
    fp_mem = profile.suite == "fp"
    # Chains below the carried threshold keep their value across
    # iterations; the rest restart fresh at their first definition in the
    # body (DOALL-style iteration parallelism).
    carried_chains = set(range(round(profile.num_chains * profile.loop_carried_fraction)))
    chain_defined: set = set()
    chain_def_counts: Dict[int, int] = {}

    def chain_breaks(chain: int) -> bool:
        """Does this definition start a fresh segment of ``chain``?"""
        count = chain_def_counts.get(chain, 0)
        chain_def_counts[chain] = count + 1
        if chain not in chain_defined and chain not in carried_chains:
            return True  # first definition of an iteration-local chain
        return count > 0 and count % profile.chain_segment_ops == 0

    for slot, kind in enumerate(kinds):
        if kind == "compute":
            op = compute_ops[compute_cursor]
            compute_cursor += 1
            if op.is_fp != (profile.suite == "fp"):
                # Overhead op of the other side (e.g. integer address
                # arithmetic in an FP program, or eon's FP work in an
                # integer program): give it a scratch register chain of
                # its own register class.
                if op.is_fp:
                    dest = RegisterRef(True, scratch_cursor % 8)
                else:
                    dest = _int_scratch_register(profile, scratch_cursor, num_int_regs)
                scratch_cursor += 1
                body.append(StaticInstruction(op=op, dest=dest, srcs=(dest,)))
                continue
            chain = chain_cursor % profile.num_chains
            chain_cursor += 1
            reg = _chain_register(profile, chain)
            fresh_start = chain_breaks(chain)
            chain_defined.add(chain)
            if fresh_start:
                # First definition of an iteration-local chain: reads no
                # prior value (constant / induction-derived start).
                srcs: Tuple[RegisterRef, ...] = ()
            else:
                srcs = (reg,)
                if profile.num_chains > 1 and rng.random() < profile.cross_dep_fraction:
                    other = rng.randrange(profile.num_chains - 1)
                    if other >= chain:
                        other += 1
                    srcs = (reg, _chain_register(profile, other))
            body.append(StaticInstruction(op=op, dest=reg, srcs=srcs, chain=chain))
        elif kind == "load":
            op = OpClass.FP_LOAD if fp_mem else OpClass.LOAD
            feeds_chain = rng.random() < profile.load_feeds_chain_fraction
            if fp_mem:
                # FP (array) codes: the address comes from an integer
                # induction register that an overhead integer op updates
                # — the load issues early and its (possibly missing)
                # value reaches the FP chain later.
                addr_src = _int_scratch_register(profile, load_cursor, num_int_regs)
            else:
                # Integer codes: pointer-style access — the address is
                # the chain's own latest value, so the load latency sits
                # inside the dependence chain.
                addr_src = None  # filled below once the chain is known
            if feeds_chain:
                chain = chain_cursor % profile.num_chains
                chain_cursor += 1
                dest = _chain_register(profile, chain)
                fresh_start = chain_breaks(chain)
                chain_defined.add(chain)
            else:
                chain = None
                fresh_start = False
                if fp_mem:
                    dest = RegisterRef(True, profile.num_chains % 32)
                else:
                    dest = _int_scratch_register(profile, scratch_cursor, num_int_regs)
                    scratch_cursor += 1
            if addr_src is None:
                # Self/chain-addressed integer load (pointer chase). An
                # iteration-local chain starting at a load reads no prior
                # value — its address comes from a constant/global.
                addr_src = None if fresh_start else dest
            load_cursor += 1
            body.append(
                StaticInstruction(
                    op=op,
                    dest=dest,
                    srcs=(addr_src,) if addr_src is not None else (),
                    chain=chain,
                    addr_offset=rng.randrange(0, profile.memory.working_set_bytes, 8),
                    addr_stride=profile.memory.stride_bytes,
                    addr_random=rng.random() < profile.memory.random_fraction,
                )
            )
        elif kind == "store":
            op = OpClass.FP_STORE if fp_mem else OpClass.STORE
            chain = rng.randrange(profile.num_chains)
            data_reg = _chain_register(profile, chain)
            body.append(
                StaticInstruction(
                    op=op,
                    dest=None,
                    # srcs[0] is the data (trace convention), srcs[1:] the
                    # address operands; the address derives from the loop
                    # counter, which is ready early each iteration.
                    srcs=(data_reg, _LOOP_COUNTER),
                    chain=chain,
                    addr_offset=rng.randrange(0, profile.memory.working_set_bytes, 8),
                    addr_stride=profile.memory.stride_bytes,
                    addr_random=rng.random() < profile.memory.random_fraction,
                )
            )
        elif kind == "branch":
            behavior = profile.branches
            draw = rng.random()
            if draw < behavior.hard_branch_fraction:
                # Data-dependent branch: mildly biased random outcome, so
                # a predictor gets it wrong ~40% of the time (matching
                # the hard branches of real integer codes).
                branch_kind = "hard"
                prob = 0.6
                period = 0
            elif rng.random() < behavior.periodic_fraction:
                branch_kind = "periodic"
                prob = 0.0
                period = rng.choice((4, 8))
            else:
                branch_kind = "biased"
                prob = behavior.bias if rng.random() < 0.5 else 1.0 - behavior.bias
                period = 0
            # The branch condition reads a recently computed integer
            # value — a chain register for integer codes, an induction/
            # scratch register for FP codes (FP condition codes move to
            # the integer side) — so branches distribute across queues
            # like the compares that feed them would.
            if profile.suite == "int":
                src = _chain_register(profile, rng.randrange(profile.num_chains))
            else:
                src = _int_scratch_register(profile, rng.randrange(32), num_int_regs)
            body.append(
                StaticInstruction(
                    op=OpClass.BRANCH,
                    dest=None,
                    srcs=(src,),
                    branch_kind=branch_kind,
                    taken_probability=prob,
                    period=period,
                )
            )
        else:  # loopback
            body.append(
                StaticInstruction(
                    op=OpClass.BRANCH,
                    dest=None,
                    srcs=(_LOOP_COUNTER,),
                    branch_kind="loopback",
                    period=64,
                    is_loop_back=True,
                )
            )
    # Every body starts with the loop-counter update so r0 is live.
    body[0] = StaticInstruction(op=OpClass.INT_ALU, dest=_LOOP_COUNTER, srcs=(_LOOP_COUNTER,))
    return body


def generate_trace(
    profile: WorkloadProfile,
    num_instructions: int,
    seed: int = 1,
    num_int_regs: int = 32,
    num_fp_regs: int = 32,
) -> Trace:
    """Unroll the profile's static program into a dynamic trace.

    The trace cycles through the loop bodies; each completed pass over a
    body counts as one iteration of that loop, advancing the streaming
    address patterns. Deterministic in (profile, num_instructions, seed).
    """
    if num_instructions < 1:
        raise ConfigurationError("num_instructions must be >= 1")
    program = build_static_program(profile, seed, num_int_regs, num_fp_regs)
    rng = make_rng(seed, f"dynamic-trace:{profile.name}")

    instructions: List[Instruction] = []
    body_index = 0
    iteration = [0] * len(program.bodies)
    exec_counts: Dict[Tuple[int, int], int] = {}
    ws = profile.memory.working_set_bytes
    stream_region = min(profile.memory.stream_region_bytes, ws)
    random_region = min(profile.memory.random_region_bytes, ws)
    seq = 0
    while seq < num_instructions:
        body = program.bodies[body_index]
        it = iteration[body_index]
        for slot, static in enumerate(body):
            if seq >= num_instructions:
                break
            pc = program.body_pc(body_index, slot)
            mem_addr = None
            taken = None
            target = None
            if static.op.is_memory:
                if static.addr_random:
                    mem_addr = program.data_base + rng.randrange(0, random_region, 4)
                else:
                    # Cyclic stream: each static memory slot walks its own
                    # small region so the steady-state footprint is cache
                    # resident (compulsory misses happen once, during
                    # warm-up, like a real loop nest re-traversing its
                    # arrays).
                    offset = (it * static.addr_stride) % stream_region
                    mem_addr = program.data_base + static.addr_offset + offset
            if static.op.is_branch:
                count = exec_counts.get((body_index, slot), 0)
                exec_counts[(body_index, slot)] = count + 1
                if static.branch_kind == "periodic":
                    taken = count % static.period != static.period - 1
                elif static.branch_kind == "loopback":
                    taken = count % static.period != static.period - 1
                else:  # biased or hard
                    taken = rng.random() < static.taken_probability
                if static.is_loop_back:
                    target = program.body_pc(body_index, 0)
                else:
                    target = pc + 8 * _INSTRUCTION_BYTES
            instructions.append(
                Instruction(
                    seq=seq,
                    pc=pc,
                    op=static.op,
                    srcs=static.srcs,
                    dest=static.dest,
                    mem_addr=mem_addr,
                    taken=taken,
                    target=target,
                )
            )
            seq += 1
        iteration[body_index] += 1
        # Move to the next loop body occasionally (models phase changes
        # between loop nests for programs with a larger code footprint).
        if len(program.bodies) > 1 and iteration[body_index] % 4 == 0:
            body_index = (body_index + 1) % len(program.bodies)

    trace = Trace(
        name=profile.name,
        instructions=instructions,
        profile_name=profile.name,
        seed=seed,
    )
    trace.validate(num_int_regs, num_fp_regs)
    return trace
