"""Trace spill files: generate once, share across worker processes.

A campaign simulates every benchmark under many schemes; the trace is
identical for all of them, yet multiprocessing workers used to regenerate
it from the profile in every worker process. This module materializes a
trace once to a content-addressed spill file (by default under
``$REPRO_CACHE_DIR/traces/``) so workers — and later campaigns at the
same scale — deserialize it instead of re-running the generator.

The spill key hashes the workload profile, the trace length, the RNG
seed and the simulator version tag (which itself hashes the simulator
sources, including the trace generator), so a stale spill can never leak
across behaviour changes. Files are written atomically and any
unreadable or mismatching file is treated as a miss: the trace is simply
regenerated, never trusted.

On-disk format (version 1)::

    8 bytes   magic  b"RPROTRC\\0"
    2 bytes   format version, big-endian unsigned
    payload   zlib-compressed UTF-8 JSON

The payload is plain JSON — instruction rows of ints, strings and nulls
— rather than pickle, so a spill written by one Python version reads
back identically under any other. A magic or version mismatch (old
pickle spills included) reads as a miss and the trace is regenerated
under the current format.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import List, Optional

from repro.common.config import stable_fingerprint
from repro.isa.instructions import Instruction, RegisterRef
from repro.isa.opcodes import OpClass
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace

__all__ = [
    "SPILL_MAGIC",
    "SPILL_FORMAT_VERSION",
    "trace_spill_key",
    "trace_spill_path",
    "materialize_trace",
    "load_trace",
]

#: Leading bytes of every spill file; anything else is not a spill.
SPILL_MAGIC = b"RPROTRC\0"

#: Bumped whenever the payload encoding changes shape. Readers reject
#: any other version, so stale spills invalidate themselves.
SPILL_FORMAT_VERSION = 1


def trace_spill_key(profile: WorkloadProfile, num_instructions: int, seed: int) -> str:
    """Content address of one generated trace."""
    from repro.experiments.store import SIMULATOR_VERSION_TAG

    material = json.dumps(
        {
            "version": SIMULATOR_VERSION_TAG,
            "profile": stable_fingerprint(profile),
            "num_instructions": num_instructions,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def trace_spill_path(
    trace_dir: os.PathLike, profile: WorkloadProfile, num_instructions: int, seed: int
) -> Path:
    return Path(trace_dir) / f"{trace_spill_key(profile, num_instructions, seed)}.trace"


# ---------------------------------------------------------------------------
# Payload encoding: every field is JSON-native, nothing depends on the
# Python version or on pickle opcodes.
# ---------------------------------------------------------------------------


def _encode_ref(ref: Optional[RegisterRef]) -> Optional[List[int]]:
    if ref is None:
        return None
    return [1 if ref.is_fp else 0, ref.index]


def _decode_ref(row: Optional[List[int]]) -> Optional[RegisterRef]:
    if row is None:
        return None
    is_fp, index = row
    return RegisterRef(bool(is_fp), index)


def _encode_trace(trace: Trace) -> bytes:
    rows = []
    for inst in trace.instructions:
        rows.append(
            [
                inst.pc,
                inst.op.value,
                [_encode_ref(src) for src in inst.srcs],
                _encode_ref(inst.dest),
                inst.mem_addr,
                inst.taken,
                inst.target,
            ]
        )
    payload = {
        "name": trace.name,
        "profile_name": trace.profile_name,
        "seed": trace.seed,
        "instructions": rows,
    }
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    header = SPILL_MAGIC + SPILL_FORMAT_VERSION.to_bytes(2, "big")
    return header + zlib.compress(raw, 6)


def _decode_trace(blob: bytes) -> Optional[Trace]:
    """Parse a spill blob; ``None`` on any magic/version/shape mismatch."""
    header_len = len(SPILL_MAGIC) + 2
    if len(blob) < header_len or not blob.startswith(SPILL_MAGIC):
        return None
    version = int.from_bytes(blob[len(SPILL_MAGIC) : header_len], "big")
    if version != SPILL_FORMAT_VERSION:
        return None
    try:
        payload = json.loads(zlib.decompress(blob[header_len:]).decode("utf-8"))
        instructions = [
            Instruction(
                seq=seq,
                pc=row[0],
                op=OpClass(row[1]),
                srcs=tuple(_decode_ref(src) for src in row[2]),
                dest=_decode_ref(row[3]),
                mem_addr=row[4],
                taken=row[5],
                target=row[6],
            )
            for seq, row in enumerate(payload["instructions"])
        ]
        return Trace(
            name=payload["name"],
            instructions=instructions,
            profile_name=payload["profile_name"],
            seed=payload["seed"],
        )
    except (zlib.error, ValueError, KeyError, TypeError, IndexError):
        return None


def load_trace(
    trace_dir: os.PathLike, profile: WorkloadProfile, num_instructions: int, seed: int
) -> Optional[Trace]:
    """The spilled trace, or ``None`` on any kind of miss.

    A missing or truncated file, a foreign or stale header (wrong magic
    bytes or format version — pre-versioning pickle spills land here), an
    undecodable payload, or metadata that does not match the request all
    read as a miss; callers regenerate.
    """
    path = trace_spill_path(trace_dir, profile, num_instructions, seed)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    trace = _decode_trace(blob)
    if (
        trace is None
        or trace.profile_name != profile.name
        or trace.seed != seed
        or len(trace) != num_instructions
    ):
        return None
    return trace


def materialize_trace(
    trace_dir: os.PathLike, profile: WorkloadProfile, num_instructions: int, seed: int
) -> Trace:
    """Load the spilled trace, generating and spilling it if absent.

    Safe under concurrent callers: the file is written atomically via a
    temp file + ``os.replace``, so racers at worst regenerate redundantly
    and the file is always complete.
    """
    trace = load_trace(trace_dir, profile, num_instructions, seed)
    if trace is not None:
        return trace
    trace = generate_trace(profile, num_instructions, seed=seed)
    path = trace_spill_path(trace_dir, profile, num_instructions, seed)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_encode_trace(trace))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return trace
