"""Trace spill files: generate once, share across worker processes.

A campaign simulates every benchmark under many schemes; the trace is
identical for all of them, yet multiprocessing workers used to regenerate
it from the profile in every worker process. This module materializes a
trace once to a content-addressed spill file (by default under
``$REPRO_CACHE_DIR/traces/``) so workers — and later campaigns at the
same scale — deserialize it instead of re-running the generator.

The spill key hashes the workload profile, the trace length, the RNG
seed and the simulator version tag (which itself hashes the simulator
sources, including the trace generator), so a stale spill can never leak
across behaviour changes. Files are written atomically and any
unreadable or mismatching file is treated as a miss: the trace is simply
regenerated, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.common.config import stable_fingerprint
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace

__all__ = ["trace_spill_key", "trace_spill_path", "materialize_trace", "load_trace"]


def trace_spill_key(profile: WorkloadProfile, num_instructions: int, seed: int) -> str:
    """Content address of one generated trace."""
    from repro.experiments.store import SIMULATOR_VERSION_TAG

    material = json.dumps(
        {
            "version": SIMULATOR_VERSION_TAG,
            "profile": stable_fingerprint(profile),
            "num_instructions": num_instructions,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def trace_spill_path(
    trace_dir: os.PathLike, profile: WorkloadProfile, num_instructions: int, seed: int
) -> Path:
    return Path(trace_dir) / f"{trace_spill_key(profile, num_instructions, seed)}.trace"


def load_trace(
    trace_dir: os.PathLike, profile: WorkloadProfile, num_instructions: int, seed: int
) -> Optional[Trace]:
    """The spilled trace, or ``None`` on any kind of miss.

    A missing, truncated or unpicklable file — or one whose metadata does
    not match the request — reads as a miss; callers regenerate.
    """
    path = trace_spill_path(trace_dir, profile, num_instructions, seed)
    try:
        with open(path, "rb") as fh:
            trace = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
        return None
    if (
        not isinstance(trace, Trace)
        or trace.profile_name != profile.name
        or trace.seed != seed
        or len(trace) != num_instructions
    ):
        return None
    return trace


def materialize_trace(
    trace_dir: os.PathLike, profile: WorkloadProfile, num_instructions: int, seed: int
) -> Trace:
    """Load the spilled trace, generating and spilling it if absent.

    Safe under concurrent callers: the file is written atomically via a
    temp file + ``os.replace``, so racers at worst regenerate redundantly
    and the file is always complete.
    """
    trace = load_trace(trace_dir, profile, num_instructions, seed)
    if trace is not None:
        return trace
    trace = generate_trace(profile, num_instructions, seed=seed)
    path = trace_spill_path(trace_dir, profile, num_instructions, seed)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(trace, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return trace
