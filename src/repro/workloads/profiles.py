"""Workload profiles: the knobs that characterize a synthetic benchmark.

The paper's effects are driven by a handful of program properties:

* **dependence-graph width** (``num_chains``) — integer programs have
  narrow DDGs that fit in a few FIFOs; FP programs have wide DDGs,
* **operation/latency mix** — FP programs use long-latency operations,
* **branch behaviour** — density and predictability,
* **memory behaviour** — working-set size and access randomness, which
  determine the cache miss rate and hence how often issue-time estimates
  go wrong.

A :class:`WorkloadProfile` captures exactly these knobs; the generator in
:mod:`repro.workloads.generator` turns a profile into a dynamic
instruction trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ConfigurationError

__all__ = ["OperationMix", "MemoryBehavior", "BranchBehavior", "WorkloadProfile"]


@dataclass(frozen=True)
class OperationMix:
    """Fractions of the dynamic instruction stream per category.

    ``load + store + branch`` plus the computation fractions must sum to
    1 (within rounding). For an integer profile the FP fractions are
    typically zero and vice versa, though mixed programs (e.g. *eon*) set
    both.
    """

    int_alu: float = 0.0
    int_mul: float = 0.0
    int_div: float = 0.0
    fp_alu: float = 0.0
    fp_mul: float = 0.0
    fp_div: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0

    def total(self) -> float:
        return (
            self.int_alu
            + self.int_mul
            + self.int_div
            + self.fp_alu
            + self.fp_mul
            + self.fp_div
            + self.load
            + self.store
            + self.branch
        )

    @property
    def fp_fraction(self) -> float:
        """Fraction of the stream that executes on the FP side."""
        return self.fp_alu + self.fp_mul + self.fp_div

    def validate(self) -> None:
        values = (
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_alu,
            self.fp_mul,
            self.fp_div,
            self.load,
            self.store,
            self.branch,
        )
        if any(v < 0 for v in values):
            raise ConfigurationError("operation fractions must be non-negative")
        if abs(self.total() - 1.0) > 1e-6:
            raise ConfigurationError(
                f"operation fractions must sum to 1 (got {self.total():.6f})"
            )
        computation = self.total() - self.load - self.store - self.branch
        if computation <= 0:
            raise ConfigurationError("profile needs some computation instructions")


@dataclass(frozen=True)
class MemoryBehavior:
    """Memory-access pattern of the profile.

    ``working_set_bytes`` is the size of the data region; accesses are
    streaming (sequential strided) with probability
    ``1 - random_fraction`` and uniformly random within the working set
    otherwise. A working set larger than L1 (32 KB) with a significant
    random fraction produces L1 misses; larger than L2 (512 KB) produces
    memory accesses.
    """

    working_set_bytes: int = 16 * 1024
    random_fraction: float = 0.1
    stride_bytes: int = 8
    # Streams wrap within a small region so their steady-state footprint
    # is cache resident: compulsory misses happen once, during warm-up.
    # (Simulated runs are short; a region that never wraps would turn
    # every streaming access into a compulsory miss.)
    stream_region_bytes: int = 256
    # Random accesses are drawn from a bounded sub-region of the working
    # set. Its size relative to L1 (32 KB) and L2 (512 KB) controls the
    # *recurrent* miss rate: ~64 KB gives L1 misses that hit in L2;
    # multi-MB regions give genuine memory-bound behaviour (mcf, art).
    random_region_bytes: int = 64 * 1024

    def validate(self) -> None:
        if self.working_set_bytes < 64:
            raise ConfigurationError("working set unrealistically small")
        if not 0.0 <= self.random_fraction <= 1.0:
            raise ConfigurationError("random_fraction must be in [0, 1]")
        if self.stride_bytes < 1:
            raise ConfigurationError("stride must be >= 1 byte")
        if self.stream_region_bytes < 64:
            raise ConfigurationError("stream region unrealistically small")
        if self.stream_region_bytes > self.working_set_bytes:
            raise ConfigurationError("stream region larger than the working set")
        if self.random_region_bytes < 64:
            raise ConfigurationError("random region unrealistically small")
        # A random region larger than the working set is clamped to the
        # working set by the generator, so it needs no validation here.


@dataclass(frozen=True)
class BranchBehavior:
    """Branch predictability of the profile.

    Static conditional branches come in three kinds:

    * *periodic* — a repeating taken/not-taken pattern (e.g. the guard of
      an inner loop): local/global history predictors learn these almost
      perfectly;
    * *biased* — taken with a fixed probability ``bias`` (or
      ``1 - bias``), independently per execution: predicted at the bias
      rate;
    * *hard* — data-dependent, taken with probability ~0.5: essentially
      unpredictable.

    ``hard_branch_fraction`` of the static branches are hard;
    ``periodic_fraction`` of the remainder are periodic; the rest are
    biased.
    """

    hard_branch_fraction: float = 0.15
    periodic_fraction: float = 0.6
    bias: float = 0.92

    def validate(self) -> None:
        if not 0.0 <= self.hard_branch_fraction <= 1.0:
            raise ConfigurationError("hard_branch_fraction must be in [0, 1]")
        if not 0.0 <= self.periodic_fraction <= 1.0:
            raise ConfigurationError("periodic_fraction must be in [0, 1]")
        if not 0.5 <= self.bias <= 1.0:
            raise ConfigurationError("bias must be in [0.5, 1]")


@dataclass(frozen=True)
class WorkloadProfile:
    """Full characterization of one synthetic benchmark.

    ``num_chains`` is the width of the data-dependence graph: the number
    of independent dependence chains interleaved in the loop body.
    ``cross_dep_fraction`` is the probability that a computation
    instruction also reads a value from a *different* chain, which makes
    the DDG a graph rather than disjoint paths.
    ``loop_body_size`` is the static size of the main loop in
    instructions; it determines the I-cache footprint together with
    ``code_footprint_loops`` (number of distinct loop bodies the program
    cycles through).
    ``load_feeds_chain_fraction`` is the probability that a load's result
    enters a dependence chain (so a cache miss stalls that chain).
    """

    name: str
    suite: str  # "int" or "fp"
    num_chains: int
    mix: OperationMix
    memory: MemoryBehavior = field(default_factory=MemoryBehavior)
    branches: BranchBehavior = field(default_factory=BranchBehavior)
    loop_body_size: int = 128
    code_footprint_loops: int = 1
    cross_dep_fraction: float = 0.15
    load_feeds_chain_fraction: float = 0.6
    # Fraction of chains whose value carries across loop iterations
    # (loop-carried dependences). The remaining chains restart fresh each
    # iteration, giving the loop DOALL-style iteration-level parallelism
    # — and, for FP codes, a steady supply of newly-born chains that all
    # want a queue of their own, which is precisely what pressures the
    # dependence-based FIFO schemes.
    loop_carried_fraction: float = 0.5
    # Maximum dependence-chain length inside one iteration: after this
    # many definitions a chain restarts fresh (a new expression tree).
    # Real code rarely strings more than a handful of operations into one
    # serial expression; short segments also mean many simultaneously
    # live chain starts, the load the paper's FP queues must absorb.
    chain_segment_ops: int = 8
    description: str = ""

    def validate(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ConfigurationError(f"{self.name}: suite must be 'int' or 'fp'")
        if self.num_chains < 1:
            raise ConfigurationError(f"{self.name}: need at least one chain")
        if self.loop_body_size < 8:
            raise ConfigurationError(f"{self.name}: loop body too small")
        if self.code_footprint_loops < 1:
            raise ConfigurationError(f"{self.name}: need at least one loop body")
        if not 0.0 <= self.cross_dep_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: cross_dep_fraction out of range")
        if not 0.0 <= self.load_feeds_chain_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: load_feeds_chain_fraction out of range")
        if not 0.0 <= self.loop_carried_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: loop_carried_fraction out of range")
        if self.chain_segment_ops < 1:
            raise ConfigurationError(f"{self.name}: chain segments need at least one op")
        self.mix.validate()
        self.memory.validate()
        self.branches.validate()
        if self.suite == "fp" and self.mix.fp_fraction == 0.0:
            raise ConfigurationError(f"{self.name}: FP profile without FP operations")

    def as_dict(self) -> Dict[str, object]:
        """Flat summary used by reports and tests."""
        return {
            "name": self.name,
            "suite": self.suite,
            "num_chains": self.num_chains,
            "fp_fraction": self.mix.fp_fraction,
            "load_fraction": self.mix.load,
            "branch_fraction": self.mix.branch,
            "working_set_bytes": self.memory.working_set_bytes,
            "loop_body_size": self.loop_body_size,
        }
