"""Cache pre-warming: bring the memory hierarchy to steady state.

The paper simulates 100M instructions per benchmark *after skipping the
initialization part*, so its caches are warm and the measured miss rates
are the programs' recurrent (capacity/conflict) miss rates. A
pure-Python cycle simulator runs 10³–10⁵ instructions, far too few for
random access patterns to cover their regions: without help, nearly every
random access would be a compulsory miss and every benchmark would look
memory bound.

:func:`prewarm` replays the profile's *address distribution* (not the
trace's actual future addresses) through the caches until they reach
steady state: every stream region is touched in full, and the random
regions are sampled several times over. The measured run then sees
exactly the recurrent misses a long-running program would: streams hit,
random accesses miss at the rate set by the region-size/cache-size
ratio.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.config import stable_fingerprint
from repro.common.rng import make_rng
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.generator import StaticProgram, build_static_program
from repro.workloads.profiles import WorkloadProfile

__all__ = ["prewarm", "clear_prewarm_cache"]

_SAMPLES_PER_LINE = 4  # random-region oversampling factor

#: Warmed-cache state memo, keyed on everything that determines it. A
#: campaign replays the same benchmark under many schemes, and the cache
#: geometry is scheme-independent, so the (deterministic) warming walk
#: runs once per benchmark per process; later calls restore the snapshot.
_WARM_STATE: Dict[Tuple, tuple] = {}


def clear_prewarm_cache() -> None:
    """Drop memoized warm states (tests that count accesses use this)."""
    _WARM_STATE.clear()


def prewarm(
    hierarchy: MemoryHierarchy,
    profile: WorkloadProfile,
    seed: int,
    num_int_regs: int = 32,
    num_fp_regs: int = 32,
) -> None:
    """Warm the caches of ``hierarchy`` for a run of ``profile``.

    Must be called with the same ``seed`` the trace was generated with so
    the static program (and hence the set of stream regions) matches.
    Cache statistics are reset afterwards, so the warming accesses never
    appear in any reported counter.

    The resulting cache state is deterministic in (profile, seed,
    register counts, cache geometry), so it is memoized per process:
    repeat calls restore a snapshot instead of replaying the access walk
    — bit-identical, since the snapshot captures the complete tag/LRU
    state and the statistics are reset either way.
    """
    memo_key = (
        stable_fingerprint(profile),
        seed,
        num_int_regs,
        num_fp_regs,
        hierarchy.config.icache.cache_key(),
        hierarchy.config.dcache.cache_key(),
        hierarchy.config.l2cache.cache_key(),
    )
    warmed = _WARM_STATE.get(memo_key)
    if warmed is not None:
        hierarchy.restore_state(warmed)
        return
    program: StaticProgram = build_static_program(
        profile, seed, num_int_regs, num_fp_regs
    )
    rng = make_rng(seed, f"prewarm:{profile.name}")
    line = hierarchy.config.dcache.line_bytes
    ws = profile.memory.working_set_bytes
    stream_region = min(profile.memory.stream_region_bytes, ws)
    random_region = min(profile.memory.random_region_bytes, ws)

    # Instruction lines: every body PC, in layout order.
    for body_index, body in enumerate(program.bodies):
        for slot in range(len(body)):
            hierarchy.instruction_fetch_latency(program.body_pc(body_index, slot))

    # Stream regions: touch every line each stream will revisit.
    for body in program.bodies:
        for static in body:
            if not static.op.is_memory or static.addr_random:
                continue
            base = program.data_base + static.addr_offset
            for offset in range(0, stream_region, line):
                hierarchy.data_access_latency(base + offset)

    # Random regions: sample to steady state. Touching each line a few
    # times in random order leaves the LRU stacks in the stationary
    # distribution of a uniform reference stream.
    region_lines = max(1, random_region // line)
    has_random = any(
        static.addr_random
        for body in program.bodies
        for static in body
        if static.op.is_memory
    )
    if has_random:
        # For regions much larger than L2 the caches saturate long before
        # every line is touched; cap the work (steady state only needs
        # the LRU stacks filled with a random resident subset).
        samples = min(_SAMPLES_PER_LINE * region_lines, 50_000)
        for __ in range(samples):
            hierarchy.data_access_latency(
                program.data_base + rng.randrange(0, random_region, 4)
            )

    # Re-touch the streams last: their steady-state residency beats the
    # random churn because they are re-referenced every iteration.
    for body in program.bodies:
        for static in body:
            if not static.op.is_memory or static.addr_random:
                continue
            base = program.data_base + static.addr_offset
            for offset in range(0, stream_region, line):
                hierarchy.data_access_latency(base + offset)

    hierarchy.icache.reset_statistics()
    hierarchy.dcache.reset_statistics()
    hierarchy.l2.reset_statistics()
    _WARM_STATE[memo_key] = hierarchy.state_snapshot()
