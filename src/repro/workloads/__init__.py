"""Synthetic workload generation: profiles, traces, SPEC2000 stand-ins."""

from repro.workloads.generator import (
    StaticInstruction,
    StaticProgram,
    build_static_program,
    generate_trace,
)
from repro.workloads.prewarm import clear_prewarm_cache, prewarm
from repro.workloads.profiles import (
    BranchBehavior,
    MemoryBehavior,
    OperationMix,
    WorkloadProfile,
)
from repro.workloads.spill import load_trace, materialize_trace, trace_spill_path
from repro.workloads.suites import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    STRESS_BENCHMARKS,
    all_profiles,
    get_profile,
    specfp2000,
    specint2000,
    stress_suite,
)
from repro.workloads.trace import Trace

__all__ = [
    "BranchBehavior",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "MemoryBehavior",
    "OperationMix",
    "STRESS_BENCHMARKS",
    "StaticInstruction",
    "StaticProgram",
    "Trace",
    "WorkloadProfile",
    "all_profiles",
    "stress_suite",
    "build_static_program",
    "clear_prewarm_cache",
    "generate_trace",
    "get_profile",
    "load_trace",
    "materialize_trace",
    "prewarm",
    "specfp2000",
    "specint2000",
    "trace_spill_path",
]
