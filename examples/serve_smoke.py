"""Smoke-test the campaign server end to end (cold and warm phases).

Starts a real :class:`repro.serve.ServeApp` on an ephemeral port, talks
to it over actual sockets, and checks the service's two headline
guarantees:

* **coalescing** — N duplicate concurrent simulation jobs cost exactly
  one simulation, and every asker downloads byte-identical artifacts;
* **warm restarts** — a fresh server over the same cache directory
  answers a replay of the whole workload with zero simulations.

Cold phase (default)::

    python examples/serve_smoke.py --cache-dir CACHE --out serve-out

posts three identical simulation jobs plus one figure-2 campaign job,
downloads the artifacts into ``--out`` (``result.json``,
``campaign.json`` — the latter byte-identical to
``campaign --figures 2 --output json``), and fails unless the duplicate
jobs resolved to exactly ``1 simulated``.

Warm phase (``--warm``) replays the same jobs against a new server over
the same cache and fails unless the scheduler reports ``0 simulated``
and the re-downloaded artifacts match the cold ones bit for bit.
"""

import argparse
import asyncio
import json
import sys
from pathlib import Path


async def _request(port, method, path, payload=None):
    """One HTTP exchange against the local server; returns (status, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: smoke\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, __, rest = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), rest


async def _await_job(port, job_id):
    while True:
        status, body = await _request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, (status, body)
        summary = json.loads(body)
        if summary["state"] == "failed":
            raise SystemExit(f"job {job_id} failed: {summary['error']}")
        if summary["state"] == "done":
            return summary
        await asyncio.sleep(0.1)


async def _run_phase(args):
    from repro.experiments.store import ResultStore
    from repro.serve import ServeApp

    phase = "warm" if args.warm else "cold"
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    store = ResultStore(args.cache_dir, shards=args.shards)
    app = ServeApp(store, workers=args.workers, batch_interval=0.05)
    port = await app.start("127.0.0.1", 0)
    print(f"serve-smoke[{phase}]: server on port {port}, "
          f"store {store.root} ({store.shards} shards)")
    try:
        sim_spec = {
            "type": "simulation", "benchmark": "gzip", "scheme": "IQ_64_64",
            "scale": args.scale, "seed": args.seed,
        }
        posts = await asyncio.gather(
            *[_request(port, "POST", "/v1/jobs", sim_spec) for __ in range(3)]
        )
        ids = []
        for status, body in posts:
            assert status == 202, (status, body)
            ids.append(json.loads(body)["job"])
        summaries = [await _await_job(port, job_id) for job_id in ids]
        merged = {}
        for summary in summaries:
            for name, count in summary["provenance"].items():
                merged[name] = merged.get(name, 0) + count
        simulated = merged.get("simulated", 0)
        print(f"serve-smoke[{phase}]: 3 duplicate jobs -> "
              f"{simulated} simulated, {merged.get('coalesced', 0)} "
              f"coalesced, {merged.get('store', 0)} from store")
        artifacts = set()
        for job_id in ids:
            status, blob = await _request(
                port, "GET", f"/v1/jobs/{job_id}/artifact"
            )
            assert status == 200, (status, blob)
            artifacts.add(blob)
        if len(artifacts) != 1:
            raise SystemExit("duplicate jobs returned differing artifacts")
        (out_dir / "result.json").write_bytes(artifacts.pop())

        fig_spec = {
            "type": "figures", "figures": [2], "scale": args.scale,
            "seed": args.seed, "format": "json",
        }
        status, body = await _request(port, "POST", "/v1/jobs", fig_spec)
        assert status == 202, (status, body)
        fig_summary = await _await_job(port, json.loads(body)["job"])
        status, campaign = await _request(
            port, "GET", f"/v1/jobs/{fig_summary['id']}/artifact"
        )
        assert status == 200, (status, campaign)
        (out_dir / "campaign.json").write_bytes(campaign)
        print(f"serve-smoke[{phase}]: figure-2 job provenance "
              f"{json.dumps(fig_summary['provenance'], sort_keys=True)}")

        status, body = await _request(port, "GET", "/v1/stats")
        stats = json.loads(body)
        sched = stats["scheduler"]
        print(f"serve-smoke[{phase}]: scheduler totals -> "
              f"{sched['units']} units, {sched['simulated']} simulated, "
              f"{sched['coalesced']} coalesced, {sched['hits']} store hits; "
              f"queue depth {sched['queue_depth']}, "
              f"{sched['in_flight_batches']} batch(es) in flight; "
              f"store holds {stats['store']['results']} results in "
              f"{stats['store']['shards']} shards")

        # Observability surfaces: Prometheus scrape + HTML status page.
        status, metrics = await _request(port, "GET", "/metrics")
        assert status == 200, (status, metrics)
        (out_dir / "metrics.prom").write_bytes(metrics)
        status, page = await _request(port, "GET", "/")
        assert status == 200, (status, page)
        (out_dir / "status.html").write_bytes(page)
        print(f"serve-smoke[{phase}]: scraped /metrics "
              f"({len(metrics)} bytes) and / ({len(page)} bytes)")
        if args.warm:
            if sched["simulated"] != 0:
                raise SystemExit(
                    f"warm replay simulated {sched['simulated']} units"
                )
        elif simulated != 1:
            raise SystemExit(
                f"expected exactly 1 simulation for the duplicates, "
                f"got {simulated}"
            )
    finally:
        await app.shutdown()
    print(f"serve-smoke[{phase}]: OK")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", required=True,
                        help="result-store directory shared across phases")
    parser.add_argument("--out", default="serve-out",
                        help="where downloaded artifacts land")
    parser.add_argument("--scale", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--warm", action="store_true",
                        help="replay phase: require 0 simulations")
    args = parser.parse_args(argv)
    asyncio.run(_run_phase(args))


if __name__ == "__main__":
    sys.exit(main())
