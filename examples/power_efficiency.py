"""Section 4 power-efficiency comparison on one benchmark.

Computes the paper's four metrics — issue-queue power, issue-queue
energy, whole-chip energy·delay and energy·delay² (assuming the issue
queue is 23% of baseline chip power) — for IQ_64_64, IF_distr and
MB_distr, normalized to the baseline.

Usage::

    python examples/power_efficiency.py [benchmark]
"""

import sys

from repro import IF_DISTR, IQ_64_64, MB_DISTR, ExperimentRunner, RunScale, default_config
from repro.common.config import scheme_name
from repro.energy import (
    EnergyModel,
    breakdown_fractions,
    calibrate_rest_of_chip,
    compute_metrics,
    energy_breakdown,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "equake"
    runner = ExperimentRunner(RunScale(num_instructions=4000, warmup_instructions=2000))

    baseline_stats = runner.run(benchmark, IQ_64_64)
    baseline_model = EnergyModel(default_config(IQ_64_64))
    rest = calibrate_rest_of_chip(
        baseline_model.energy_pj(baseline_stats.events.as_dict()),
        baseline_stats.cycles,
        baseline_stats.committed_instructions,
    )
    baseline_metrics = compute_metrics(baseline_model, baseline_stats, rest)

    print(f"benchmark: {benchmark}\n")
    print(f"{'scheme':<26} {'IPC':>6} {'power':>7} {'energy':>7} {'ED':>7} {'ED2':>7}")
    for scheme in (IQ_64_64, IF_DISTR, MB_DISTR):
        stats = runner.run(benchmark, scheme)
        model = EnergyModel(default_config(scheme))
        metrics = compute_metrics(model, stats, rest)
        norm = metrics.normalized_to(baseline_metrics)
        print(
            f"{scheme_name(scheme):<26} {stats.ipc:>6.2f} "
            f"{norm['power']:>7.2f} {norm['energy']:>7.2f} "
            f"{norm['energy_delay']:>7.2f} {norm['energy_delay2']:>7.2f}"
        )

    print("\nissue-logic energy breakdown (MB_distr):")
    stats = runner.run(benchmark, MB_DISTR)
    model = EnergyModel(default_config(MB_DISTR))
    fractions = breakdown_fractions(energy_breakdown(model, stats.events.as_dict()))
    for component, fraction in sorted(fractions.items(), key=lambda kv: -kv[1]):
        print(f"  {component:<12} {100 * fraction:5.1f}%")


if __name__ == "__main__":
    main()
