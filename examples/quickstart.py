"""Quickstart: simulate one benchmark under two issue-queue schemes.

Runs the synthetic *swim* stand-in under the paper's baseline (IQ_64_64)
and under the proposed MB_distr organization, then prints performance
and issue-logic energy side by side.

Usage::

    python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import IQ_64_64, MB_DISTR, ExperimentRunner, RunScale, default_config
from repro.common.config import scheme_name
from repro.energy import EnergyModel


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 4000

    runner = ExperimentRunner(
        RunScale(num_instructions=instructions, warmup_instructions=instructions // 2)
    )

    print(f"benchmark: {benchmark} ({instructions} instructions, half warm-up)\n")
    print(f"{'scheme':<26} {'IPC':>6} {'cycles':>8} {'IQ energy/instr':>16}")
    for scheme in (IQ_64_64, MB_DISTR):
        stats = runner.run(benchmark, scheme)
        model = EnergyModel(default_config(scheme))
        energy = model.energy_pj(stats.events.as_dict())
        per_instr = energy / stats.committed_instructions
        print(
            f"{scheme_name(scheme):<26} {stats.ipc:>6.2f} {stats.cycles:>8} "
            f"{per_instr:>13.2f} pJ"
        )

    base = runner.run(benchmark, IQ_64_64)
    ours = runner.run(benchmark, MB_DISTR)
    loss = 100 * (base.ipc - ours.ipc) / base.ipc
    print(f"\nMB_distr IPC loss vs baseline: {loss:.1f}%")
    print("(the paper reports 7.6% on SPECfp2000 at full scale)")


if __name__ == "__main__":
    main()
