"""The Section 3 FP study: IssueFIFO vs LatFIFO vs MixBUFF.

Reproduces the experiment that motivates MixBUFF: on FP workloads with
wide dependence graphs, dependence-based FIFOs (IssueFIFO) lose a lot of
IPC, latency-based placement (LatFIFO) recovers some of it, and MixBUFF
— out-of-order buffers with chain-latency selection — recovers most.

Usage::

    python examples/fp_scheme_study.py [fp_queues] [fp_entries]
"""

import sys

from repro import BASELINE_UNBOUNDED, ExperimentRunner, IssueSchemeConfig, RunScale

FP_BENCHES = ["ammp", "applu", "galgel", "mesa", "swim"]


def main() -> None:
    fp_queues = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    fp_entries = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    runner = ExperimentRunner(RunScale(num_instructions=4000, warmup_instructions=2000))
    schemes = {
        kind: IssueSchemeConfig(
            kind=kind,
            int_queues=16,
            int_queue_entries=16,
            fp_queues=fp_queues,
            fp_queue_entries=fp_entries,
        )
        for kind in ("issuefifo", "latfifo", "mixbuff")
    }

    print(f"FP queues: {fp_queues} x {fp_entries} entries "
          f"(integer side fixed at 16x16)\n")
    header = f"{'benchmark':<10} {'baseline':>9}"
    for kind in schemes:
        header += f" {kind + ' loss':>15}"
    print(header)

    totals = {kind: 0.0 for kind in schemes}
    for bench in FP_BENCHES:
        base_ipc = runner.ipc(bench, BASELINE_UNBOUNDED)
        row = f"{bench:<10} {base_ipc:>9.2f}"
        for kind, scheme in schemes.items():
            loss = runner.ipc_loss_pct(bench, scheme, BASELINE_UNBOUNDED)
            totals[kind] += loss
            row += f" {loss:>14.1f}%"
        print(row)

    print("\naverage loss:")
    for kind, total in totals.items():
        print(f"  {kind:<10} {total / len(FP_BENCHES):5.1f}%")
    print("\n(paper, 8x16 queues: IssueFIFO 24.8%, LatFIFO 15.2%, MixBUFF 5.2%)")


if __name__ == "__main__":
    main()
