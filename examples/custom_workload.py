"""Define a custom workload profile and study it across issue schemes.

Shows the full public workload API: build a profile with explicit
dependence-graph and memory knobs, generate a trace, pre-warm the
caches and run the cycle simulator directly (without the experiment
runner), for every issue-queue organization.

The profile below is a deliberately extreme FP kernel — 24 interleaved
dependence chains — to show how the dependence-based FIFO scheme falls
over when the DDG is wider than its queue count while MixBUFF absorbs
the chains into shared buffers.
"""

from repro import IssueSchemeConfig, Processor, default_config, generate_trace
from repro.common.config import scheme_name
from repro.workloads import (
    BranchBehavior,
    MemoryBehavior,
    OperationMix,
    WorkloadProfile,
    prewarm,
)

WIDE_KERNEL = WorkloadProfile(
    name="wide-kernel",
    suite="fp",
    num_chains=24,
    chain_segment_ops=10,
    mix=OperationMix(
        int_alu=0.13,
        fp_alu=0.32,
        fp_mul=0.25,
        load=0.22,
        store=0.05,
        branch=0.03,
    ),
    memory=MemoryBehavior(
        working_set_bytes=512 * 1024,
        random_fraction=0.35,
        random_region_bytes=128 * 1024,
    ),
    branches=BranchBehavior(hard_branch_fraction=0.03, bias=0.97),
    loop_body_size=240,
    description="hand-built wide FP kernel",
)

SCHEMES = [
    IssueSchemeConfig(kind="conventional", unbounded=True),
    IssueSchemeConfig(kind="issuefifo", int_queues=16, int_queue_entries=16,
                      fp_queues=8, fp_queue_entries=16),
    IssueSchemeConfig(kind="latfifo", int_queues=16, int_queue_entries=16,
                      fp_queues=8, fp_queue_entries=16),
    IssueSchemeConfig(kind="mixbuff", int_queues=16, int_queue_entries=16,
                      fp_queues=8, fp_queue_entries=16),
]


def main() -> None:
    seed = 21
    instructions = 4000
    print(f"profile: {WIDE_KERNEL.name} "
          f"({WIDE_KERNEL.num_chains} chains, "
          f"{WIDE_KERNEL.memory.working_set_bytes // 1024}K working set)\n")
    print(f"{'scheme':<24} {'IPC':>6} {'dispatch stalls':>16}")
    for scheme in SCHEMES:
        trace = generate_trace(WIDE_KERNEL, instructions, seed=seed)
        processor = Processor(default_config(scheme), trace)
        prewarm(processor.hierarchy, WIDE_KERNEL, seed)
        stats = processor.run(warmup_instructions=instructions // 2)
        print(f"{scheme_name(scheme):<24} {stats.ipc:>6.2f} "
              f"{stats.dispatch_stall_cycles:>16}")


if __name__ == "__main__":
    main()
